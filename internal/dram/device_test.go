package dram

import (
	"testing"

	"dstress/internal/addrmap"
)

func testDevice(t testing.TB, seed uint64) *Device {
	t.Helper()
	d, err := NewDevice(DefaultConfig(64, seed))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	bad := DefaultConfig(64, 1)
	bad.WeakCellsPerRank = -1
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("negative weak cells accepted")
	}
	bad = DefaultConfig(64, 1)
	bad.ScrambledRowFrac = 1.5
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("invalid scramble fraction accepted")
	}
	bad = DefaultConfig(64, 1)
	bad.Physics.GainFactor = 0.5
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("invalid physics accepted")
	}
}

func TestDefectMapDeterministic(t *testing.T) {
	a := testDevice(t, 7)
	b := testDevice(t, 7)
	if len(a.WeakCells()) != len(b.WeakCells()) {
		t.Fatal("weak cell counts differ for same seed")
	}
	for i := range a.WeakCells() {
		if a.WeakCells()[i] != b.WeakCells()[i] {
			t.Fatalf("weak cell %d differs for same seed", i)
		}
	}
	c := testDevice(t, 8)
	same := 0
	for i := range a.WeakCells() {
		if i < len(c.WeakCells()) && a.WeakCells()[i] == c.WeakCells()[i] {
			same++
		}
	}
	if same == len(a.WeakCells()) {
		t.Fatal("different seeds produced identical defect maps")
	}
}

func TestWeakCellPopulation(t *testing.T) {
	d := testDevice(t, 1)
	cfg := d.Config()
	want := cfg.WeakCellsPerRank * cfg.Geometry.Ranks
	if len(d.WeakCells()) != want {
		t.Fatalf("weak cells = %d, want %d", len(d.WeakCells()), want)
	}
	for _, w := range d.WeakCells() {
		if w.Tau0 <= 0 {
			t.Fatal("non-positive retention")
		}
		if w.Bit < 0 || w.Bit >= bitsPerWord {
			t.Fatalf("bit %d out of range", w.Bit)
		}
		if w.WordCol < 0 || w.WordCol >= cfg.Geometry.WordsPerRow() {
			t.Fatalf("column %d out of range", w.WordCol)
		}
		if w.VRT && (w.VRTMult < cfg.Physics.VRTLow || w.VRTMult > cfg.Physics.VRTHigh) {
			t.Fatalf("VRT multiplier %v out of range", w.VRTMult)
		}
	}
}

func TestClusterPopulation(t *testing.T) {
	d := testDevice(t, 2)
	cfg := d.Config()
	want := cfg.ClustersPerRank * cfg.Geometry.Ranks
	if len(d.Clusters()) != want {
		t.Fatalf("clusters = %d, want %d", len(d.Clusters()), want)
	}
	for _, c := range d.Clusters() {
		if len(c.Bits) != len(ClusterBitPositions) {
			t.Fatalf("cluster has %d bits", len(c.Bits))
		}
		for i, b := range c.Bits {
			if b != ClusterBitPositions[i] {
				t.Fatalf("cluster bits %v", c.Bits)
			}
		}
	}
}

func TestReadWriteWord(t *testing.T) {
	d := testDevice(t, 3)
	l := addrmap.Loc{Rank: 1, Bank: 3, Row: 10, Col: 99}
	if _, ok := d.ReadWord(l); ok {
		t.Fatal("unwritten row reported as written")
	}
	d.WriteWord(l, 0xABCD)
	v, ok := d.ReadWord(l)
	if !ok || v != 0xABCD {
		t.Fatalf("read back %x ok=%v", v, ok)
	}
	// Other columns of the row become written (zero).
	v, ok = d.ReadWord(addrmap.Loc{Rank: 1, Bank: 3, Row: 10, Col: 0})
	if !ok || v != 0 {
		t.Fatal("row image not materialized")
	}
	d.Reset()
	if _, ok := d.ReadWord(l); ok {
		t.Fatal("Reset did not clear data")
	}
}

func TestScrambleMaskProperties(t *testing.T) {
	d := testDevice(t, 4)
	cfg := d.Config()
	scrambled, total := 0, 0
	for bank := 0; bank < cfg.Geometry.Banks; bank++ {
		for row := 0; row < cfg.Geometry.Rows; row++ {
			k := RowKey{Rank: 0, Bank: int32(bank), Row: int32(row)}
			m := d.ScrambleMask(k)
			if m != 0 && m != 2 && m != 3 {
				t.Fatalf("unexpected mask %d", m)
			}
			if m != 0 {
				scrambled++
			}
			total++
			// Deterministic per row.
			if d.ScrambleMask(k) != m {
				t.Fatal("mask not stable")
			}
		}
	}
	frac := float64(scrambled) / float64(total)
	if frac < cfg.ScrambledRowFrac/2 || frac > cfg.ScrambledRowFrac*2 {
		t.Fatalf("scrambled fraction %v, configured %v", frac, cfg.ScrambledRowFrac)
	}
}

func TestCellTypeLayout(t *testing.T) {
	d := testDevice(t, 5)
	// Find an unflipped row.
	var k RowKey
	found := false
	for row := 0; row < 64 && !found; row++ {
		k = RowKey{Rank: 0, Bank: 0, Row: int32(row)}
		if !d.PhaseFlipped(k) {
			found = true
		}
	}
	if !found {
		t.Fatal("no unflipped row in 64 rows")
	}
	want := []CellType{TrueCell, TrueCell, AntiCell, AntiCell}
	for p := 0; p < 16; p++ {
		if got := d.CellTypeAt(k, p); got != want[p%4] {
			t.Fatalf("pos %d type %v, want %v", p, got, want[p%4])
		}
	}
}

func TestPhaseFlippedLayout(t *testing.T) {
	d := testDevice(t, 5)
	var k RowKey
	found := false
	for bank := 0; bank < 8 && !found; bank++ {
		for row := 0; row < 64 && !found; row++ {
			k = RowKey{Rank: 0, Bank: int32(bank), Row: int32(row)}
			if d.PhaseFlipped(k) {
				found = true
			}
		}
	}
	if !found {
		t.Skip("no phase-flipped row in sample")
	}
	if d.CellTypeAt(k, 0) != AntiCell || d.CellTypeAt(k, 2) != TrueCell {
		t.Fatal("phase-flipped layout does not start with anti-cells")
	}
}

func TestChargeAllWordUnscrambled(t *testing.T) {
	d := testDevice(t, 6)
	for row := 0; row < 64; row++ {
		k := RowKey{Rank: 0, Bank: 0, Row: int32(row)}
		if d.ScrambleMask(k) != 0 || d.PhaseFlipped(k) {
			continue
		}
		if w := d.ChargeAllWord(k); w != 0x3333333333333333 {
			t.Fatalf("charge-all word %x, want 0x3333... (repeating 1100)", w)
		}
		return
	}
	t.Fatal("no plain row found")
}

func TestChargeAllWordScrambled(t *testing.T) {
	d := testDevice(t, 6)
	cfg := d.Config()
	for bank := 0; bank < cfg.Geometry.Banks; bank++ {
		for row := 0; row < cfg.Geometry.Rows; row++ {
			k := RowKey{Rank: 0, Bank: int32(bank), Row: int32(row)}
			if d.ScrambleMask(k) == 2 && !d.PhaseFlipped(k) {
				if w := d.ChargeAllWord(k); w != 0xCCCCCCCCCCCCCCCC {
					t.Fatalf("mask-2 charge-all word %x, want 0xCCCC...", w)
				}
				return
			}
		}
	}
	t.Skip("no mask-2 row found")
}

func TestChargeDischargeComplement(t *testing.T) {
	d := testDevice(t, 7)
	for row := 0; row < 20; row++ {
		k := RowKey{Rank: 1, Bank: 2, Row: int32(row)}
		if d.ChargeAllWord(k) != ^d.DischargeAllWord(k) {
			t.Fatal("discharge word is not the complement")
		}
	}
}

func TestClusterFireWordBits(t *testing.T) {
	d := testDevice(t, 8)
	k := RowKey{Rank: 0, Bank: 0, Row: 5}
	w := d.ClusterFireWord(k)
	for _, b := range ClusterBitPositions {
		if w&(1<<uint(b)) != 0 {
			t.Fatalf("cluster bit %d not zero in fire word %x", b, w)
		}
	}
}

func TestWeakRowsSortedAndComplete(t *testing.T) {
	d := testDevice(t, 9)
	rows := d.WeakRows()
	if len(rows) == 0 {
		t.Fatal("no weak rows")
	}
	seen := map[RowKey]bool{}
	for i, k := range rows {
		if seen[k] {
			t.Fatal("duplicate weak row")
		}
		seen[k] = true
		if i > 0 {
			p := rows[i-1]
			if p.Rank > k.Rank ||
				(p.Rank == k.Rank && p.Bank > k.Bank) ||
				(p.Rank == k.Rank && p.Bank == k.Bank && p.Row >= k.Row) {
				t.Fatal("weak rows not sorted")
			}
		}
	}
	for _, w := range d.WeakCells() {
		if !seen[w.Key] {
			t.Fatal("weak cell's row missing from WeakRows")
		}
	}
	for _, c := range d.Clusters() {
		if !seen[c.Key] {
			t.Fatal("cluster's row missing from WeakRows")
		}
	}
}

func TestRemapInvolution(t *testing.T) {
	d := testDevice(t, 10)
	g := d.Geometry()
	for bank := int32(0); bank < int32(g.Banks); bank++ {
		for col := 0; col < g.WordsPerRow(); col++ {
			p := d.physWordCol(bank, col)
			if d.physWordCol(bank, p) != col {
				t.Fatalf("remap not an involution at bank %d col %d", bank, col)
			}
		}
	}
}

func TestKeyLocRoundTrip(t *testing.T) {
	l := addrmap.Loc{Rank: 1, Bank: 5, Row: 33}
	if Key(l).Loc() != l {
		t.Fatal("Key/Loc round trip failed")
	}
}

func TestStringSummary(t *testing.T) {
	d := testDevice(t, 11)
	if s := d.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
	if TrueCell.String() != "true-cell" || AntiCell.String() != "anti-cell" {
		t.Fatal("CellType strings wrong")
	}
}

func TestMustNewDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewDevice did not panic on bad config")
		}
	}()
	bad := DefaultConfig(64, 1)
	bad.ClustersPerRank = -1
	MustNewDevice(bad)
}

func TestStrengthScaleShiftsRetention(t *testing.T) {
	weakCfg := DefaultConfig(64, 42)
	strongCfg := weakCfg
	strongCfg.StrengthScale = 10
	weak := MustNewDevice(weakCfg)
	strong := MustNewDevice(strongCfg)
	for i := range weak.WeakCells() {
		ratio := strong.WeakCells()[i].Tau0 / weak.WeakCells()[i].Tau0
		if ratio < 9.99 || ratio > 10.01 {
			t.Fatalf("strength scale not applied: ratio %v", ratio)
		}
	}
}
