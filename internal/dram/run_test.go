package dram

import (
	"testing"

	"dstress/internal/addrmap"
	"dstress/internal/xrand"
)

// Operating points used throughout the paper's evaluation.
const (
	relaxedTREFP = 2.283 // seconds — the platform maximum, 35x nominal
	nominalTREFP = 0.064
	relaxedVDD   = 1.428
	nominalVDD   = 1.5
)

// fillUniform writes the same 64-bit word to every column of every row.
func fillUniform(d *Device, word uint64) {
	g := d.Geometry()
	for rank := 0; rank < g.Ranks; rank++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				for col := 0; col < g.WordsPerRow(); col++ {
					d.WriteWord(addrmap.Loc{Rank: rank, Bank: bank,
						Row: row, Col: col}, word)
				}
			}
		}
	}
}

// fillRow writes one word across a whole row.
func fillRow(d *Device, k RowKey, word uint64) {
	g := d.Geometry()
	for col := 0; col < g.WordsPerRow(); col++ {
		d.WriteWord(addrmap.Loc{Rank: int(k.Rank), Bank: int(k.Bank),
			Row: int(k.Row), Col: col}, word)
	}
}

// fillPerRowChargeAll writes every row with its own scramble-aware
// charge-all word.
func fillPerRowChargeAll(d *Device) {
	g := d.Geometry()
	for rank := 0; rank < g.Ranks; rank++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				k := RowKey{Rank: int32(rank), Bank: int32(bank), Row: int32(row)}
				fillRow(d, k, d.ChargeAllWord(k))
			}
		}
	}
}

// fillTailored24K emulates the ideal 24-KByte pattern: every weak row holds
// its charge-all word, its physically adjacent rows hold discharge-all
// words. Rows that are both weak and neighbours of weak rows stay charged.
func fillTailored24K(d *Device) {
	g := d.Geometry()
	weak := map[RowKey]bool{}
	for _, k := range d.WeakRows() {
		weak[k] = true
	}
	for _, k := range d.WeakRows() {
		for _, dr := range []int32{-1, 1} {
			n := RowKey{Rank: k.Rank, Bank: k.Bank, Row: k.Row + dr}
			if int(n.Row) < 0 || int(n.Row) >= g.Rows || weak[n] {
				continue
			}
			fillRow(d, n, d.DischargeAllWord(n))
		}
	}
	for _, k := range d.WeakRows() {
		fillRow(d, k, d.ChargeAllWord(k))
	}
}

func meanCE(t *testing.T, d *Device, p RunParams, runs int, seed uint64) float64 {
	t.Helper()
	ce, _, _, err := d.AverageRuns(p, runs, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ce
}

func relaxedParams() RunParams {
	return RunParams{TREFP: relaxedTREFP, TempC: 55, VDD: relaxedVDD}
}

func TestRunParamValidation(t *testing.T) {
	d := testDevice(t, 1)
	cases := []RunParams{
		{TREFP: 0, TempC: 50, VDD: 1.5, RNG: xrand.New(1)},
		{TREFP: 1, TempC: 50, VDD: 0, RNG: xrand.New(1)},
		{TREFP: 1, TempC: 50, VDD: 1.5, RNG: nil},
	}
	for i, p := range cases {
		if _, err := d.Run(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, _, _, err := d.AverageRuns(relaxedParams(), 0, xrand.New(1)); err == nil {
		t.Error("AverageRuns accepted n=0")
	}
}

func TestEmptyDeviceNoErrors(t *testing.T) {
	d := testDevice(t, 2)
	p := relaxedParams()
	p.RNG = xrand.New(1)
	res, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CE != 0 || res.UE != 0 || res.SDC != 0 {
		t.Fatalf("errors on unwritten device: %+v", res)
	}
}

func TestWorstPatternProducesErrors(t *testing.T) {
	d := testDevice(t, 3)
	fillUniform(d, 0x3333333333333333)
	ce := meanCE(t, d, relaxedParams(), 5, 42)
	if ce < 5 {
		t.Fatalf("worst-case fill produced only %.1f CEs on average", ce)
	}
}

func TestNominalParametersNearlyErrorFree(t *testing.T) {
	d := testDevice(t, 3)
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	p.TREFP = nominalTREFP
	p.VDD = nominalVDD
	p.TempC = 50
	ce := meanCE(t, d, p, 10, 42)
	relaxed := meanCE(t, d, relaxedParams(), 10, 42)
	if ce > relaxed/20 {
		t.Fatalf("nominal params CEs %.2f vs relaxed %.2f: margin too small",
			ce, relaxed)
	}
}

// TestWorstVsBestRatio reproduces the paper's ~8x gap between the CEs of
// the worst-case (charge-all, repeating '1100') and best-case (discharge-
// all, repeating '0011') 64-bit patterns.
func TestWorstVsBestRatio(t *testing.T) {
	worstSum, bestSum := 0.0, 0.0
	for seed := uint64(0); seed < 3; seed++ {
		d := testDevice(t, 100+seed)
		fillUniform(d, 0x3333333333333333)
		worstSum += meanCE(t, d, relaxedParams(), 10, seed)
		d.Reset()
		fillUniform(d, 0xCCCCCCCCCCCCCCCC)
		bestSum += meanCE(t, d, relaxedParams(), 10, seed)
	}
	if bestSum == 0 {
		t.Fatalf("best-case produced zero CEs (worst %.1f); gain path dead",
			worstSum)
	}
	ratio := worstSum / bestSum
	t.Logf("worst/best CE ratio = %.2f (worst %.1f, best %.1f)",
		ratio, worstSum/3, bestSum/3)
	if ratio < 4 || ratio > 16 {
		t.Fatalf("worst/best ratio %.2f outside [4,16] (paper: ~8x)", ratio)
	}
}

// TestTemperatureMonotonic: CE counts must grow with temperature.
func TestTemperatureMonotonic(t *testing.T) {
	d := testDevice(t, 4)
	fillUniform(d, 0x3333333333333333)
	prev := -1.0
	for _, temp := range []float64{50, 55, 60, 65} {
		p := relaxedParams()
		p.TempC = temp
		ce := meanCE(t, d, p, 10, 7)
		t.Logf("T=%.0f°C: %.1f CEs", temp, ce)
		if ce <= prev {
			t.Fatalf("CEs not increasing with temperature: %.1f at %v after %.1f",
				ce, temp, prev)
		}
		prev = ce
	}
}

// TestVoltageEffect: lowering VDD must increase CEs.
func TestVoltageEffect(t *testing.T) {
	d := testDevice(t, 5)
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	p.VDD = nominalVDD
	hi := meanCE(t, d, p, 10, 9)
	p.VDD = relaxedVDD
	lo := meanCE(t, d, p, 10, 9)
	if lo <= hi {
		t.Fatalf("CEs at 1.428V (%.1f) not above 1.5V (%.1f)", lo, hi)
	}
}

// TestTailoredBeatsUniform reproduces the paper's Fig 9 shape: the ideal
// per-row (24-KByte-style) pattern yields ~16% more CEs than the uniform
// worst-case 64-bit fill.
func TestTailoredBeatsUniform(t *testing.T) {
	uniformSum, tailoredSum := 0.0, 0.0
	for seed := uint64(0); seed < 3; seed++ {
		d := testDevice(t, 200+seed)
		p := relaxedParams()
		p.TempC = 60
		fillUniform(d, 0x3333333333333333)
		uniformSum += meanCE(t, d, p, 10, seed)
		d.Reset()
		fillTailored24K(d)
		tailoredSum += meanCE(t, d, p, 10, seed)
	}
	gain := tailoredSum/uniformSum - 1
	t.Logf("tailored 24K gain over uniform worst: %.1f%% (%.1f vs %.1f)",
		gain*100, tailoredSum/3, uniformSum/3)
	if gain < 0.05 || gain > 0.40 {
		t.Fatalf("24K gain %.1f%% outside [5%%,40%%] (paper: ~16%%)", gain*100)
	}
}

// TestHammerIncreasesCEs: activations of adjacent rows must raise the error
// count of the hammered rows, and more activations raise it further.
func TestHammerIncreasesCEs(t *testing.T) {
	d := testDevice(t, 6)
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	p.TempC = 60
	base := meanCE(t, d, p, 10, 11)

	mkActs := func(rate float64) map[RowKey]float64 {
		acts := map[RowKey]float64{}
		g := d.Geometry()
		for _, k := range d.WeakRows() {
			if k.Row > 0 {
				acts[RowKey{k.Rank, k.Bank, k.Row - 1}] = rate
			}
			if int(k.Row) < g.Rows-1 {
				acts[RowKey{k.Rank, k.Bank, k.Row + 1}] = rate
			}
		}
		return acts
	}
	p.ActsPerWindow = mkActs(5000)
	hammered := meanCE(t, d, p, 10, 11)
	p.ActsPerWindow = mkActs(50000)
	hard := meanCE(t, d, p, 10, 11)
	t.Logf("base %.1f, hammered(5k) %.1f (+%.0f%%), hammered(50k) %.1f",
		base, hammered, (hammered/base-1)*100, hard)
	if hammered <= base {
		t.Fatal("hammering did not increase CEs")
	}
	if hard <= hammered {
		t.Fatal("stronger hammering did not increase CEs further")
	}
}

// TestClusterUEOnset reproduces the paper's UE temperature behaviour:
//   - the synthesized cluster-firing pattern produces UEs at 62 °C in
//     (nearly) every run, but none at 60 °C;
//   - the worst-case CE pattern produces no UEs at 62 °C;
//   - MSCAN all-0s produces no UEs at 65 °C but does at 70 °C;
//   - checkerboard produces no UEs even at 70 °C.
func TestClusterUEOnset(t *testing.T) {
	d := testDevice(t, 7)
	g := d.Geometry()
	fire := func(word func(RowKey) uint64) {
		d.Reset()
		for rank := 0; rank < g.Ranks; rank++ {
			for bank := 0; bank < g.Banks; bank++ {
				for row := 0; row < g.Rows; row++ {
					k := RowKey{int32(rank), int32(bank), int32(row)}
					fillRow(d, k, word(k))
				}
			}
		}
	}
	ueFrac := func(temp float64, seed uint64) float64 {
		p := relaxedParams()
		p.TempC = temp
		_, _, f, err := d.AverageRuns(p, 10, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	fire(d.ClusterFireWord)
	if f := ueFrac(62, 1); f < 0.9 {
		t.Fatalf("cluster-fire pattern at 62°C: UE fraction %.2f, want ~1", f)
	}
	if f := ueFrac(60, 2); f > 0 {
		t.Fatalf("cluster-fire pattern at 60°C produced UEs (frac %.2f)", f)
	}

	fire(d.ChargeAllWord)
	if f := ueFrac(62, 3); f > 0 {
		t.Fatalf("CE-worst pattern at 62°C produced UEs (frac %.2f)", f)
	}

	fire(func(RowKey) uint64 { return 0 }) // MSCAN all-0s
	if f := ueFrac(65, 4); f > 0 {
		t.Fatalf("all-0s at 65°C produced UEs (frac %.2f)", f)
	}
	if f := ueFrac(70, 5); f < 0.9 {
		t.Fatalf("all-0s at 70°C: UE fraction %.2f, want ~1", f)
	}

	fire(func(RowKey) uint64 { return 0xAAAAAAAAAAAAAAAA })
	if f := ueFrac(70, 6); f > 0 {
		t.Fatalf("checkerboard at 70°C produced UEs (frac %.2f)", f)
	}
}

// TestUEWordsAreMultiBit: the flips of a UE word must number >= 2.
func TestUEWordsAreMultiBit(t *testing.T) {
	d := testDevice(t, 8)
	g := d.Geometry()
	for rank := 0; rank < g.Ranks; rank++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				k := RowKey{int32(rank), int32(bank), int32(row)}
				fillRow(d, k, d.ClusterFireWord(k))
			}
		}
	}
	p := relaxedParams()
	p.TempC = 62
	p.RNG = xrand.New(33)
	res, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasUE() {
		t.Fatal("expected UEs at 62°C with cluster-fire fill")
	}
	for _, we := range res.Errors {
		if we.Status.String() == "UE" && len(we.Flips) < 2 {
			t.Fatalf("UE word with %d flips", len(we.Flips))
		}
	}
}

// TestVRTRunToRunVariation: with VRT cells present, two runs under identical
// conditions but different RNG streams should usually differ in CE count.
func TestVRTRunToRunVariation(t *testing.T) {
	d := testDevice(t, 9)
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	diff := false
	var prev int
	for i := 0; i < 8; i++ {
		p.RNG = xrand.New(uint64(1000 + i))
		res, err := d.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.CE != prev {
			diff = true
		}
		prev = res.CE
	}
	if !diff {
		t.Fatal("no run-to-run variation across 8 runs")
	}
}

// TestRunDeterministicGivenRNG: identical seeds must give identical results.
func TestRunDeterministicGivenRNG(t *testing.T) {
	d := testDevice(t, 10)
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	p.RNG = xrand.New(5)
	a, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.RNG = xrand.New(5)
	b, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.CE != b.CE || a.UE != b.UE || a.SDC != b.SDC {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

// TestCEByRankAccounting: per-rank CE counts must sum to the total.
func TestCEByRankAccounting(t *testing.T) {
	d := testDevice(t, 11)
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	p.TempC = 60
	p.RNG = xrand.New(3)
	res, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range res.CEByRank {
		sum += c
	}
	if sum != res.CE {
		t.Fatalf("rank counts sum %d != CE %d", sum, res.CE)
	}
}

// TestDIMMVariation: devices with different strength scales must show large
// CE differences under identical stress (the paper's Fig 1b DIMM-to-DIMM
// variation).
func TestDIMMVariation(t *testing.T) {
	mk := func(scale float64) float64 {
		cfg := DefaultConfig(64, 77)
		cfg.StrengthScale = scale
		d := MustNewDevice(cfg)
		fillUniform(d, 0x3333333333333333)
		p := relaxedParams()
		p.TempC = 60
		ce, _, _, err := d.AverageRuns(p, 10, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		return ce
	}
	weak := mk(0.7)
	strong := mk(12)
	t.Logf("weak DIMM %.1f CEs, strong DIMM %.2f CEs", weak, strong)
	if weak < strong*20 {
		t.Fatalf("insufficient DIMM-to-DIMM variation: %.1f vs %.1f", weak, strong)
	}
}

func BenchmarkRunWorstFill(b *testing.B) {
	d, err := NewDevice(DefaultConfig(64, 1))
	if err != nil {
		b.Fatal(err)
	}
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	p.RNG = xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPerRankTemperature: heating one rank hotter must raise only that
// rank's error count — the testbed's independent per-rank heaters matter.
func TestPerRankTemperature(t *testing.T) {
	d := testDevice(t, 60)
	fillUniform(d, 0x3333333333333333)
	p := relaxedParams()
	p.TempC = 55
	p.TempByRank = map[int]float64{0: 66, 1: 55}
	p.RNG = xrand.New(7)
	res, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CEByRank[0] <= res.CEByRank[1] {
		t.Fatalf("hot rank 0 (%d CEs) not above cool rank 1 (%d CEs)",
			res.CEByRank[0], res.CEByRank[1])
	}
	// Uniform temperatures keep the ranks comparable.
	p.TempByRank = nil
	uniform, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := uniform.CEByRank[0], uniform.CEByRank[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo*3 < hi {
		t.Fatalf("uniform heating gave unbalanced ranks: %v", uniform.CEByRank)
	}
}

// TestPartialClusterSDC reproduces the paper's SECDED warning: errors of
// more than two bits can be *miscorrected*. A defect cluster with exactly
// three of its four cells charged fails as a 3-bit flip at ~65°C, which the
// (72,64) code miscorrects into silent data corruption.
func TestPartialClusterSDC(t *testing.T) {
	d := testDevice(t, 70)
	g := d.Geometry()
	for rank := 0; rank < g.Ranks; rank++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				k := RowKey{int32(rank), int32(bank), int32(row)}
				// Fire word with cluster bit 22 discharged: 3 charged cells.
				fillRow(d, k, d.ClusterFireWord(k)|1<<22)
			}
		}
	}
	p := relaxedParams()
	p.TempC = 65
	p.RNG = xrand.New(3)
	res, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC == 0 {
		t.Fatalf("no silent data corruption from 3-cell cluster failures (CE=%d UE=%d)",
			res.CE, res.UE)
	}
	if res.UE > 0 {
		t.Fatalf("3-bit cluster failures detected as UEs (%d) — expected miscorrection", res.UE)
	}
	// The SDC words must carry exactly the three cluster flips.
	for _, we := range res.Errors {
		if we.SDC && len(we.Flips) != 3 {
			t.Fatalf("SDC word with %d flips", len(we.Flips))
		}
	}
	// At 62°C the same pattern is only in the partial band: single-cell
	// leaks, correctable.
	p.TempC = 62
	p.RNG = xrand.New(4)
	res62, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res62.SDC != 0 {
		t.Fatalf("SDCs already at 62°C (%d)", res62.SDC)
	}
}
