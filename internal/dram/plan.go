package dram

import (
	"sort"

	"dstress/internal/ecc"
)

// The evaluation plan is the device's run-invariant fast path. A GA fitness
// measurement repeats Run on an *identical* written state — ten times per
// AverageRuns batch, once per TREFP point in a marginal-refresh sweep — with
// only the RNG-driven noise (VRT state, cluster jitter) varying between
// runs. Everything else the reference evaluation derives per run is a pure
// function of the written state and the defect map: the sorted row order,
// each weak cell's resolved physical position and charge state, the
// data-dependent coupling divisors, which clusters are armed, and the ECC
// encoding of every word that can possibly be corrupted. The plan compiles
// all of it once per written state (tracked by a generation counter bumped
// on every mutation) and leaves each run with a flat walk of float
// arithmetic, RNG draws and threshold compares.
//
// Contract (see DESIGN.md §8):
//
//   - Results are bit-identical to the reference path (runReference, kept in
//     run.go and pinned by the differential suite in plan_test.go). That
//     requires preserving the reference's exact floating-point operation
//     order — cached values are the reference's intermediate *divisors*, not
//     algebraically pre-divided retention times — and its exact RNG draw
//     order: rows in sorted (rank, bank, row) order, each row's weak cells
//     in defect-map order before its clusters, one Bool draw per VRT cell,
//     one Norm draw per cluster with at least one charged cell.
//   - Any mutation of device state that evaluation reads must bump the
//     generation counter (WriteWord, FillRow, FillRowWords, Reset, Age); the
//     next Run recompiles. RowImage exposes rows read-only for this reason.
//   - The plan and its scratch buffers belong to one device and are reused
//     across runs; Run results never alias them.

// planCell is a weak cell resolved against the current written state.
type planCell struct {
	cand        int32 // index into evalPlan.words
	bit         int32 // codeword bit to flip on failure
	src         int32 // defect-map index (v2 draw key; stable across states)
	charged     bool  // cell holds its charged state
	vrt         bool  // consumes one Bool(0.5) draw per run
	tau0        float64
	vrtMult     float64
	couplingDiv float64 // 1 + α·lateralCharged + δ·verticalDischarged
}

// planCluster is an armed (≥1 charged cell) defect cluster. Discharged
// clusters are dropped at compile time: the reference path skips them before
// drawing jitter, so they consume no RNG either way.
type planCluster struct {
	cand       int32
	partialBit int32 // first charged bit: the partial-band single leak
	src        int32 // defect-map index (v2 draw key; stable across states)
	tau0       float64
	clusterDiv float64 // 1 + α·(chargedN-1) + extα·ext
	fullBits   []int   // all charged bits, in cluster-bit order
}

// planRow is one written row holding defects, with [lo, hi) ranges into the
// plan's flat cell, cluster and candidate-word slices.
type planRow struct {
	key            RowKey
	cellLo, cellHi int32
	clLo, clHi     int32
	wordLo, wordHi int32
}

// planWord is a candidate word: a word column that holds at least one weak
// cell or cluster, with its ECC encoding cached.
type planWord struct {
	key      RowKey
	col      int
	original uint64
	enc      ecc.Word
}

// evalPlan is the compiled evaluation of one written state.
type evalPlan struct {
	gen         uint64 // device generation this plan was compiled against
	rows        []planRow
	cells       []planCell
	clusters    []planCluster
	words       []planWord
	partialBand float64 // physics ClusterPartialBand clamped to >= 1

	// bitsArena backs every planCluster.fullBits slice. Entries are written
	// once at compile time and never grow afterwards, so slices handed out
	// before an arena reallocation stay valid — they just alias the old
	// backing array.
	bitsArena []int

	// colScratch is compile-time scratch for collecting a row's candidate
	// word columns.
	colScratch []int

	// Per-run scratch, reused across runs: flips[i] collects the failing
	// bits of words[i]; touched lists the word indices with flips.
	flips   [][]int
	touched []int
}

// addFlip records a failing bit of candidate word w.
func (pl *evalPlan) addFlip(w int32, bit int) {
	if len(pl.flips[w]) == 0 {
		pl.touched = append(pl.touched, int(w))
	}
	pl.flips[w] = append(pl.flips[w], bit)
}

// planFor returns the plan for the device's current written state,
// recompiling if a mutation invalidated the cached one.
func (d *Device) planFor() *evalPlan {
	if d.plan == nil || d.plan.gen != d.gen {
		d.plan = d.compilePlan()
	}
	return d.plan
}

// sortRowKeys orders keys by (rank, bank, row) — the canonical evaluation
// order that fixes the RNG draw sequence and the error-log order.
func sortRowKeys(keys []RowKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		return a.Row < b.Row
	})
}

// compilePlan resolves every defect in a written row against the current row
// images. The cached couplingDiv/clusterDiv values are exactly the divisors
// the reference path computes per run, so applying them per run reproduces
// its floating-point results bit for bit.
func (d *Device) compilePlan() *evalPlan {
	phys := d.cfg.Physics
	pl := &evalPlan{gen: d.gen, partialBand: phys.ClusterPartialBand}
	if pl.partialBand < 1 {
		pl.partialBand = 1
	}

	keys := make([]RowKey, 0, len(d.rows))
	for key := range d.rows {
		keys = append(keys, key)
	}
	sortRowKeys(keys)

	for _, key := range keys {
		d.compileRowInto(pl, key)
	}

	pl.flips = make([][]int, len(pl.words))
	evalMet.planCompiles.Add(1)
	return pl
}

// compileRowInto resolves one written row's defects against the current row
// image and appends its candidate words, cells, clusters and planRow entry
// to pl. It is the single source of per-row compile semantics: the full
// compile above and the batch splice path (batch.go) both call it, so a
// spliced row is bit-identical to a freshly compiled one by construction.
// Rows without defects append nothing.
func (d *Device) compileRowInto(pl *evalPlan, key RowKey) {
	phys := d.cfg.Physics
	weakIdx := d.weakByRow[key]
	clIdx := d.clustersByRow[key]
	if len(weakIdx) == 0 && len(clIdx) == 0 {
		return
	}
	img := d.rows[key]

	// Candidate words of this row, column-ascending so the error log
	// comes out sorted by (rank, bank, row, word col).
	cols := pl.colScratch[:0]
	for _, wi := range weakIdx {
		cols = append(cols, d.weak[wi].WordCol)
	}
	for _, ci := range clIdx {
		cols = append(cols, d.clusters[ci].WordCol)
	}
	sort.Ints(cols)
	pl.colScratch = cols
	base := int32(len(pl.words))
	prev := -1
	for _, col := range cols {
		if col == prev {
			continue
		}
		prev = col
		pl.words = append(pl.words, planWord{
			key: key, col: col, original: img[col],
			enc: ecc.Encode(img[col]),
		})
	}
	candOf := func(col int) int32 {
		for i := base; i < int32(len(pl.words)); i++ {
			if pl.words[i].col == col {
				return i
			}
		}
		panic("dram: plan candidate word missing")
	}

	cellLo := int32(len(pl.cells))
	for _, wi := range weakIdx {
		w := &d.weak[wi]
		cand := candOf(w.WordCol)
		var stored bool
		if w.Bit < 64 {
			stored = img[w.WordCol]&(1<<uint(w.Bit)) != 0
		} else {
			stored = pl.words[cand].enc.Check&(1<<uint(w.Bit-64)) != 0
		}
		pos := d.physBit(key, w.WordCol, w.Bit)
		charged := stored == (d.CellTypeAt(key, pos) == TrueCell)
		lat, vert := d.neighbourCoupling(key, pos)
		pl.cells = append(pl.cells, planCell{
			cand:    cand,
			bit:     int32(w.Bit),
			src:     int32(wi),
			charged: charged,
			vrt:     w.VRT,
			tau0:    w.Tau0,
			vrtMult: w.VRTMult,
			couplingDiv: 1 + phys.CouplingAlpha*float64(lat) +
				phys.VCouplingDelta*float64(vert),
		})
	}

	clLo := int32(len(pl.clusters))
	for _, ci := range clIdx {
		c := &d.clusters[ci]
		data := img[c.WordCol]
		chargedN := 0
		bitsLo := len(pl.bitsArena)
		for _, b := range c.Bits {
			if data&(1<<uint(b)) == 0 { // charged anti-cell
				chargedN++
				pl.bitsArena = append(pl.bitsArena, b)
			}
		}
		if chargedN == 0 {
			pl.bitsArena = pl.bitsArena[:bitsLo]
			continue
		}
		fullBits := pl.bitsArena[bitsLo:len(pl.bitsArena):len(pl.bitsArena)]
		ext := 0
		for i, nb := range clusterNeighbourBits {
			bit := data&(1<<uint(nb)) != 0
			if bit == c.Neighbours[i] {
				ext++
			}
		}
		pl.clusters = append(pl.clusters, planCluster{
			cand:       candOf(c.WordCol),
			partialBit: int32(fullBits[0]),
			src:        int32(ci),
			tau0:       c.Tau0,
			clusterDiv: 1 + phys.ClusterAlpha*float64(chargedN-1) +
				phys.ClusterExtAlpha*float64(ext),
			fullBits: fullBits,
		})
	}

	pl.rows = append(pl.rows, planRow{
		key:    key,
		cellLo: cellLo, cellHi: int32(len(pl.cells)),
		clLo: clLo, clHi: int32(len(pl.clusters)),
		wordLo: base, wordHi: int32(len(pl.words)),
	})
}
