package dram

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dstress/internal/xrand"
)

// The batch differential suite: RunBatch / AverageRunsBatch must be
// bit-identical to the per-genome v2 path for every item — same plans, same
// conditions, same draws, same ECC verdicts — across rewritten rows, brand
// new rows, per-item hammer maps and whole-device mutations mid-batch.

// batchGenome builds the Apply of one synthetic genome: a handful of
// defect-row rewrites with genome-specific data, the locality pattern
// (block specs around weak rows) the splice path is built for. Genomes
// gi%5==3 also write a brand-new row outside the defect set; genome 7 ages
// the device, forcing the trackAll full-recompile path mid-batch.
func batchGenome(weak []RowKey, gi int) func(*Device) error {
	return func(d *Device) error {
		if gi == 7 {
			if err := d.Age(0.999); err != nil {
				return err
			}
		}
		for r := 0; r < 4; r++ {
			k := weak[(gi*3+r)%len(weak)]
			w := 0x9E3779B97F4A7C15 * uint64(gi*31+r+1)
			d.FillRowWords(k, []uint64{w, ^w, w >> 7})
		}
		if gi%5 == 3 {
			k := weak[gi%len(weak)]
			k.Row = (k.Row + 5) % 64
			d.FillRow(k, uint64(gi)*0xABCD)
		}
		return nil
	}
}

// batchConditions builds shared run parameters plus per-item activation
// maps: even items inherit the shared ActsPerWindow, odd items carry their
// own, so both the hammer-equal copy and the hammer-changed rebuild paths
// are exercised on clean plan rows.
func batchConditions(weak []RowKey, pop int) (RunParams, []map[RowKey]float64) {
	shared := map[RowKey]float64{}
	for i := 0; i < 4 && i < len(weak); i++ {
		k := weak[i]
		k.Row++
		shared[k] = 40000
	}
	p := RunParams{
		TREFP:         relaxedTREFP,
		TempC:         60,
		VDD:           relaxedVDD,
		Version:       DeterminismV2,
		TempByRank:    map[int]float64{0: 63},
		TREFPByRow:    map[RowKey]float64{weak[0]: relaxedTREFP / 2},
		ActsPerWindow: shared,
	}
	acts := make([]map[RowKey]float64, pop)
	for gi := range acts {
		if gi%2 == 0 {
			continue
		}
		k := weak[(gi*3)%len(weak)]
		k.Row++
		acts[gi] = map[RowKey]float64{k: float64(20000 + gi*1000)}
	}
	return p, acts
}

// actsFn lifts a static per-item activation map into the BatchItem.Acts
// callback shape (nil stays nil, selecting the shared map).
func actsFn(m map[RowKey]float64) func() map[RowKey]float64 {
	if m == nil {
		return nil
	}
	return func() map[RowKey]float64 { return m }
}

func TestBatchDetV2RunBatchBitIdentical(t *testing.T) {
	const pop = 24
	single := testDevice(t, 11)
	batched := testDevice(t, 11)
	fillUniform(single, 0x3333333333333333)
	fillUniform(batched, 0x3333333333333333)
	weak := single.WeakRows()
	p, acts := batchConditions(weak, pop)

	items := make([]BatchItem, pop)
	rootB := xrand.New(99)
	for gi := range items {
		items[gi] = BatchItem{
			Apply: batchGenome(weak, gi),
			Acts:  actsFn(acts[gi]),
			RNG:   rootB.Split(),
		}
	}
	got, err := batched.RunBatch(p, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != pop {
		t.Fatalf("RunBatch returned %d results, want %d", len(got), pop)
	}

	rootS := xrand.New(99)
	for gi := 0; gi < pop; gi++ {
		rng := rootS.Split()
		if err := batchGenome(weak, gi)(single); err != nil {
			t.Fatal(err)
		}
		pg := p
		pg.RNG = rng
		if acts[gi] != nil {
			pg.ActsPerWindow = acts[gi]
		}
		want, err := single.Run(pg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[gi], want) {
			t.Fatalf("item %d: batch result diverges\n batch: %+v\nsingle: %+v",
				gi, got[gi], want)
		}
	}
}

func TestBatchDetV2AverageRunsBitIdentical(t *testing.T) {
	const pop, runs = 24, 5
	single := testDevice(t, 12)
	batched := testDevice(t, 12)
	fillUniform(single, 0x5555555555555555)
	fillUniform(batched, 0x5555555555555555)
	weak := single.WeakRows()
	p, acts := batchConditions(weak, pop)

	items := make([]BatchItem, pop)
	rootB := xrand.New(7)
	for gi := range items {
		items[gi] = BatchItem{
			Apply: batchGenome(weak, gi),
			Acts:  actsFn(acts[gi]),
			RNG:   rootB.Split(),
		}
	}
	got, err := batched.AverageRunsBatch(p, runs, items)
	if err != nil {
		t.Fatal(err)
	}

	// The per-genome reference mirrors the server-level aggregation: full
	// Run per split, integer sums, divide at the end. AverageRuns is pinned
	// to the same counts by its own suite.
	rootS := xrand.New(7)
	for gi := 0; gi < pop; gi++ {
		rng := rootS.Split()
		if err := batchGenome(weak, gi)(single); err != nil {
			t.Fatal(err)
		}
		pg := p
		if acts[gi] != nil {
			pg.ActsPerWindow = acts[gi]
		}
		var ce, sdc, ues int
		perRank := map[int]int{}
		for r := 0; r < runs; r++ {
			pg.RNG = rng.Split()
			res, err := single.Run(pg)
			if err != nil {
				t.Fatal(err)
			}
			ce += res.CE
			sdc += res.SDC
			if res.HasUE() {
				ues++
			}
			for rank, n := range res.CEByRank {
				perRank[rank] += n
			}
		}
		want := BatchResult{
			MeanCE:  float64(ce) / runs,
			MeanSDC: float64(sdc) / runs,
			UEFrac:  float64(ues) / runs,
		}
		for rank, n := range perRank {
			if n == 0 {
				continue
			}
			if want.CEByRank == nil {
				want.CEByRank = make([]float64, single.Geometry().Ranks)
			}
			want.CEByRank[rank] = float64(n) / runs
		}
		if !reflect.DeepEqual(got[gi], want) {
			t.Fatalf("item %d: batch average diverges\n batch: %+v\nsingle: %+v",
				gi, got[gi], want)
		}
	}
}

// TestBatchDetV2RepeatedGenerations drives several consecutive batch calls
// on one device — the GA's actual shape — so splices build on state left by
// earlier generations and pooled sessions are reused.
func TestBatchDetV2RepeatedGenerations(t *testing.T) {
	const pop, runs, gens = 8, 3, 4
	single := testDevice(t, 13)
	batched := testDevice(t, 13)
	fillUniform(single, 0xAAAAAAAAAAAAAAAA)
	fillUniform(batched, 0xAAAAAAAAAAAAAAAA)
	weak := single.WeakRows()
	p, acts := batchConditions(weak, pop)

	rootB := xrand.New(1234)
	rootS := xrand.New(1234)
	for gen := 0; gen < gens; gen++ {
		items := make([]BatchItem, pop)
		for gi := range items {
			items[gi] = BatchItem{
				Apply: batchGenome(weak, gen*pop+gi),
				Acts:  actsFn(acts[gi]),
				RNG:   rootB.Split(),
			}
		}
		got, err := batched.AverageRunsBatch(p, runs, items)
		if err != nil {
			t.Fatal(err)
		}
		for gi := 0; gi < pop; gi++ {
			rng := rootS.Split()
			if err := batchGenome(weak, gen*pop+gi)(single); err != nil {
				t.Fatal(err)
			}
			pg := p
			if acts[gi] != nil {
				pg.ActsPerWindow = acts[gi]
			}
			ceM, sdcM, ueF, err := single.AverageRuns(pg, runs, rng)
			if err != nil {
				t.Fatal(err)
			}
			if got[gi].MeanCE != ceM || got[gi].MeanSDC != sdcM ||
				got[gi].UEFrac != ueF {
				t.Fatalf("gen %d item %d: (%v,%v,%v) != (%v,%v,%v)",
					gen, gi, got[gi].MeanCE, got[gi].MeanSDC, got[gi].UEFrac,
					ceM, sdcM, ueF)
			}
		}
	}
}

func TestBatchRejectsV1(t *testing.T) {
	d := testDevice(t, 3)
	fillUniform(d, 0)
	items := []BatchItem{{
		Apply: func(*Device) error { return nil },
		RNG:   xrand.New(1),
	}}
	p := RunParams{TREFP: relaxedTREFP, TempC: 60, VDD: relaxedVDD}
	if _, err := d.RunBatch(p, items); err == nil ||
		!strings.Contains(err.Error(), "determinism contract v2") {
		t.Fatalf("RunBatch under v1: err = %v, want v2-requirement error", err)
	}
	if _, err := d.AverageRunsBatch(p, 3, items); err == nil ||
		!strings.Contains(err.Error(), "determinism contract v2") {
		t.Fatalf("AverageRunsBatch under v1: err = %v, want v2-requirement error", err)
	}
}

func TestBatchValidation(t *testing.T) {
	d := testDevice(t, 3)
	p := RunParams{TREFP: relaxedTREFP, TempC: 60, VDD: relaxedVDD,
		Version: DeterminismV2}
	if _, err := d.RunBatch(p, []BatchItem{{RNG: xrand.New(1)}}); err == nil {
		t.Fatal("nil Apply accepted")
	}
	if _, err := d.RunBatch(p, []BatchItem{
		{Apply: func(*Device) error { return nil }}}); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := d.AverageRunsBatch(p, 0, nil); err == nil {
		t.Fatal("n = 0 accepted")
	}
	if out, err := d.RunBatch(p, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

// TestBatchAllocsSteadyState is the allocation regression guard of the
// pooled batch path: once the session pool is warm, a whole batched
// generation must stay under a committed per-item allocation budget. The
// unavoidable steady-state allocations are the per-run RNG splits the
// determinism contract demands (`runs` allocations per item, paid equally
// by the per-genome path), one CEByRank slice per item with CEs, and the
// result slice. The budget of (runs+4)·pop+64 leaves headroom for
// map-internal churn without letting per-item plan or scratch allocation
// (what pooling exists to prevent) back in.
func TestBatchAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation inflates allocation counts")
	}
	const pop, runs = 64, 4
	d := testDevice(t, 21)
	fillUniform(d, 0x3333333333333333)
	weak := d.WeakRows()
	p, acts := batchConditions(weak, pop)

	root := xrand.New(5)
	items := make([]BatchItem, pop)
	for gi := range items {
		items[gi] = BatchItem{
			Apply: batchGenome(weak, gi%7), // avoid the Age genome
			Acts:  actsFn(acts[gi]),
			RNG:   root.Split(),
		}
	}
	// Warm the pool and every growable buffer.
	for i := 0; i < 3; i++ {
		if _, err := d.AverageRunsBatch(p, runs, items); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := d.AverageRunsBatch(p, runs, items); err != nil {
			t.Fatal(err)
		}
	})
	budget := float64((runs+4)*pop + 64)
	if avg > budget {
		t.Fatalf("steady-state batched generation allocates %.0f objects, budget %.0f",
			avg, budget)
	}
}

// BenchmarkBatchEval compares a whole batched generation against the
// per-genome v2 path at several population sizes. cmd/benchjson -batch
// derives speedup_batch and the B/op / allocs/op ratios from the
// single/batch pairs; the committed snapshot pins the pop=512 ratios.
func BenchmarkBatchEval(b *testing.B) {
	const runs = 10
	for _, pop := range []int{32, 128, 512} {
		d := benchDevice(b, 64)
		weak := d.WeakRows()
		p := benchParams()
		p.Version = DeterminismV2

		b.Run(fmt.Sprintf("single/pop=%d", pop), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				root := xrand.New(uint64(i) + 1)
				for gi := 0; gi < pop; gi++ {
					rng := root.Split()
					if err := batchGenome(weak, gi%7)(d); err != nil {
						b.Fatal(err)
					}
					if _, _, _, err := d.AverageRuns(p, runs, rng); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batch/pop=%d", pop), func(b *testing.B) {
			b.ReportAllocs()
			items := make([]BatchItem, pop)
			for i := 0; i < b.N; i++ {
				root := xrand.New(uint64(i) + 1)
				for gi := range items {
					items[gi] = BatchItem{
						Apply: batchGenome(weak, gi%7),
						RNG:   root.Split(),
					}
				}
				if _, err := d.AverageRunsBatch(p, runs, items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
