package dram

import (
	"fmt"
	"math"
)

// Physics holds the constants of the retention model. A weak cell's
// effective retention time under given operating conditions is
//
//	τ_eff = τ₀ · strength · 2^(-(T-T_ref)/TempHalvingC) · (VDD/VDDNominal)^VDDExp
//	        · vrt / (1 + CouplingAlpha·lateralCharged + VCouplingDelta·verticalDischarged)
//	        / (1 + HammerBeta·adjacentActivationsPerWindow)
//
// A *charged* cell (true-cell storing 1 or anti-cell storing 0) fails —
// flips its stored bit — when τ_eff < TREFP. A discharged cell can only
// fail through the much slower charge-gain mechanism: it fails when
// τ_eff · GainFactor < TREFP.
//
// Two distinct data-dependent coupling mechanisms are modelled:
//
//   - lateral (same row, physically adjacent columns): a *charged*
//     neighbour raises leakage through bitline/wordline crosstalk, so a
//     fully charged row is the intra-row worst case;
//   - vertical (same column, physically adjacent rows): a *discharged*
//     neighbour raises leakage — the potential difference between adjacent
//     storage nodes drives node-to-node leakage. This is what makes a
//     tailored multi-row pattern (charged victim row between discharged
//     aggressor rows) stronger than any uniform fill, i.e. the paper's
//     24-KByte result.
//
// These dependencies are the published ones: retention roughly halves every
// ~10 °C [Hamamoto'98], scales with supply voltage [Chang'17], depends on
// the stored data and neighbouring data [Khan'14, Liu'13], fluctuates
// run-to-run due to VRT [Restle'92], and degrades with activations of
// physically adjacent rows [Kim'14].
type Physics struct {
	VDDNominal float64 // nominal supply voltage (1.5 V for DDR3)
	TRefC      float64 // reference temperature for τ₀ (°C)

	// Weak-cell τ₀ follows TauFloor + LogNormal(RetMu, RetSigma): even the
	// weakest cells retain for TauFloor seconds at the reference
	// conditions, which is what gives DRAM a usable guardband between the
	// nominal refresh period and the failure onset (the Fig 14 margins).
	TauFloor float64
	RetMu    float64
	RetSigma float64

	TempHalvingC   float64 // °C of temperature rise that halves retention
	VDDExp         float64 // retention ∝ (VDD/nominal)^VDDExp
	CouplingAlpha  float64 // leakage boost per charged lateral neighbour
	VCouplingDelta float64 // leakage boost per discharged vertical neighbour
	GainFactor     float64 // charge-gain retention multiplier (≫1)

	VRTProb float64 // probability a weak cell is VRT-active
	VRTLow  float64 // min retention multiplier of the alternate VRT state
	VRTHigh float64 // max retention multiplier of the alternate VRT state

	HammerBeta float64 // disturbance per adjacent-row activation per window

	// Cluster (multi-bit defect) parameters. Cluster cells share one τ₀ and
	// a strong intra-cluster coupling: the cluster can only fail below its
	// standalone onset temperature when every cell is charged *and* the
	// lateral neighbours of the cluster are charged too. That combination
	// is reachable by a synthesized data pattern but not by the simple
	// micro-benchmark fills, reproducing the paper's observation that
	// MSCAN-style tests only reveal UEs at 70 °C while DStress finds UE
	// patterns at 62 °C.
	ClusterTau0     float64 // seconds at TRefC, nominal VDD
	ClusterAlpha    float64 // intra-cluster coupling per charged sibling
	ClusterExtAlpha float64 // coupling per charged lateral neighbour of the cluster
	ClusterJitter   float64 // per-run log-normal sigma on cluster τ
	ClusterHammerB  float64 // hammer sensitivity of cluster cells
	// ClusterPartialBand widens the failure threshold for *partial*
	// failures: when TREFP <= τ_eff < TREFP·ClusterPartialBand, only the
	// cluster's weakest member leaks — a single-bit (correctable) error.
	// Near-threshold clusters therefore announce themselves through CEs
	// before the full multi-bit failure point is reached.
	ClusterPartialBand float64
}

// DefaultPhysics returns the calibrated constants. See the calibration test
// in run_test.go for the targets these were tuned against.
func DefaultPhysics() Physics {
	return Physics{
		VDDNominal: 1.5,
		TRefC:      50,
		// Weak cells retain for at least ~3.5 s at 50 °C, with a log-normal
		// spread above the floor (median ~10 s): at the relaxed 2.283 s
		// refresh period a meaningful fraction fails, growing quickly with
		// temperature, while the nominal 64 ms period keeps a wide margin.
		TauFloor:       3.5,
		RetMu:          math.Log(6.75),
		RetSigma:       1.1,
		TempHalvingC:   9.0,
		VDDExp:         3.0,
		CouplingAlpha:  0.28,
		VCouplingDelta: 0.22,
		GainFactor:     2.2,
		VRTProb:        0.30,
		VRTLow:         0.45,
		VRTHigh:        2.2,
		HammerBeta:     1.5e-5,

		// Calibrated so that, at the relaxed TREFP/VDD operating point, a
		// fully-charged cluster with fully-charged neighbours fails from
		// 62 °C, a fully-charged cluster under the all-0s fill (2 charged
		// neighbours) fails only from ~68 °C, and nothing fails at 60 °C.
		ClusterTau0:        27.0,
		ClusterAlpha:       0.334,
		ClusterExtAlpha:    0.55,
		ClusterJitter:      0.005,
		ClusterHammerB:     2e-5,
		ClusterPartialBand: 1.08,
	}
}

// Validate reports whether the constants are usable.
func (p Physics) Validate() error {
	switch {
	case p.VDDNominal <= 0:
		return fmt.Errorf("dram: VDDNominal = %v", p.VDDNominal)
	case p.RetSigma <= 0:
		return fmt.Errorf("dram: RetSigma = %v", p.RetSigma)
	case p.TempHalvingC <= 0:
		return fmt.Errorf("dram: TempHalvingC = %v", p.TempHalvingC)
	case p.GainFactor < 1:
		return fmt.Errorf("dram: GainFactor = %v", p.GainFactor)
	case p.TauFloor < 0:
		return fmt.Errorf("dram: TauFloor = %v", p.TauFloor)
	case p.VRTProb < 0 || p.VRTProb > 1:
		return fmt.Errorf("dram: VRTProb = %v", p.VRTProb)
	case p.VRTLow <= 0 || p.VRTHigh < p.VRTLow:
		return fmt.Errorf("dram: VRT range [%v,%v]", p.VRTLow, p.VRTHigh)
	case p.ClusterTau0 <= 0:
		return fmt.Errorf("dram: ClusterTau0 = %v", p.ClusterTau0)
	}
	return nil
}

// tempFactor returns the retention multiplier at temperature tC.
func (p Physics) tempFactor(tC float64) float64 {
	return math.Exp2(-(tC - p.TRefC) / p.TempHalvingC)
}

// vddFactor returns the retention multiplier at supply voltage vdd.
func (p Physics) vddFactor(vdd float64) float64 {
	return math.Pow(vdd/p.VDDNominal, p.VDDExp)
}
