package dram

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"dstress/internal/xrand"
)

// Determinism contract v2 (see DESIGN.md §10).
//
// The v1 evaluation (run.go) pins its results to the *sequential* RNG draw
// order: rows sorted, each row's cells before its clusters, one Bool per VRT
// cell, one Norm per armed cluster. That contract makes results bit-identical
// to the reference path, but it also makes the draw a cell consumes depend on
// the position of every cell evaluated before it — evaluation order is part
// of the contract, which blocks reordering, batching and caching.
//
// v2 replaces the sequential stream with counter-based per-cell streams
// (xrand.Stream): each run derives one stream key from a single draw of the
// run's Rand, and every stochastic term is then keyed on the *defect-map
// index* of the cell or cluster that consumes it. The draw a cell sees is a
// pure function of (run key, defect index) — independent of evaluation
// order, of which other cells are evaluated, and of whether a draw is
// consumed at all. That frees the kernel to do what v1 never could:
//
//   - structure-of-arrays layout with pre-reassociated per-cell constants
//     (num = tau0·gainSel/couplingDiv folded at plan compile);
//   - a conditions cache (v2cond): per (plan, operating conditions), every
//     non-stochastic outcome is decided once — deterministic cells become a
//     replayed flip list, VRT cells whose two states agree settle out, and
//     clusters get log-domain jitter thresholds — so a repeated-measurement
//     batch (AverageRuns, the GA's fitness unit) pays per run only for the
//     draws that can actually change the outcome;
//   - a counts-only classification tail for callers that never read the
//     error log.
//
// Because StreamFrom consumes exactly one draw of p.RNG, v2 inherits the
// existing determinism plumbing unchanged: the farm's per-chromosome splits,
// the fleet's shipped RNG states and the checkpointed noise roots all key v2
// runs exactly as they key v1 runs. v2 results are therefore bit-identical
// across serial, farm, fleet and kill-and-resume execution — but they are
// NOT comparable to v1 results: the noise draws differ, and the v2 kernel
// reassociates floating-point terms the v1 contract keeps in reference
// order. Within a corrupted word, v2 logs flips in ascending bit order
// (v1 logs them in draw order).
type DeterminismVersion int

// The supported contracts.
const (
	// DeterminismV1 is the original sequential-draw contract: results are
	// bit-identical to the reference path, draws follow evaluation order.
	DeterminismV1 DeterminismVersion = 1
	// DeterminismV2 is the counter-stream contract: draws are keyed on
	// defect-map indices, evaluation is order-independent and batched.
	DeterminismV2 DeterminismVersion = 2
)

// Normalize maps the zero value to DeterminismV1, so configs, checkpoints
// and job requests that predate the version field keep their behaviour.
func (v DeterminismVersion) Normalize() DeterminismVersion {
	if v == 0 {
		return DeterminismV1
	}
	return v
}

// Validate reports whether the version is a known contract.
func (v DeterminismVersion) Validate() error {
	switch v.Normalize() {
	case DeterminismV1, DeterminismV2:
		return nil
	}
	return fmt.Errorf("dram: unknown determinism version %d", int(v))
}

func (v DeterminismVersion) String() string {
	switch v.Normalize() {
	case DeterminismV1:
		return "v1"
	case DeterminismV2:
		return "v2"
	}
	return fmt.Sprintf("DeterminismVersion(%d)", int(v))
}

// planV2 is the structure-of-arrays view of an evalPlan for the v2 kernel.
// It owns no plan state of its own: rows, candidate words, flip scratch and
// the classification tails live in the base plan; planV2 adds parallel
// slices indexed like base.cells / base.clusters with pre-reassociated
// constants, plus the conditions cache.
//
// For a weak cell the v1 math
//
//	tau0·env[·vrtMult]/couplingDiv/hammerDiv  [·GainFactor]  <  trefp
//
// is reassociated into
//
//	(num·env)[·vrtMult]  <  trefp·hammerDiv
//
// with num = tau0·gainSel/couplingDiv folded at compile time (gainSel is
// GainFactor for discharged cells, 1 otherwise). Clusters fold
// clNum = tau0/clusterDiv and compare the jitter draw in the log domain.
// This reassociation is exactly what the v1 contract forbids — it is legal
// here because v2 promises only self-consistency.
type planV2 struct {
	base *evalPlan

	num []float64 // per cell: tau0·gainSel/couplingDiv

	clNum []float64 // per cluster: tau0/clusterDiv
	clKey []uint64  // per cluster: stream sub-key 2·(defect-map index)+1

	cond v2cond
}

// v2cond caches everything derivable from (plan, operating conditions) —
// valid until the conditions change, which in a repeated-measurement batch
// they never do. The override maps are identified by pointer: RunParams
// documents that callers reuse or rebuild them, never mutate them in place
// between runs.
type v2cond struct {
	valid             bool
	trefp, tempC, vdd float64
	tempID, refID     uintptr
	actsID            uintptr

	// staticCand/staticBit are the flips decided by the conditions alone:
	// deterministic cells below threshold, plus VRT cells that fail (or
	// survive) in both states. Replayed into the flip scratch every run.
	staticCand []int32
	staticBit  []int32

	// live* are the bistable VRT cells — exactly one of their two states
	// fails, so one Bool draw per run decides. when is the draw value
	// (true = slow state) under which the cell fails.
	liveKey  []uint64
	liveCand []int32
	liveBit  []int32
	liveWhen []bool

	// Per-cluster log-domain jitter thresholds: the cluster fails fully
	// when its N(0, ClusterJitter) draw is below lThresh, partially when
	// below lBand.
	clLBand   []float64
	clLThresh []float64
}

// mapID identifies an override map for cache matching.
func mapID[K comparable, V any](m map[K]V) uintptr {
	if m == nil {
		return 0
	}
	return reflect.ValueOf(m).Pointer()
}

func (c *v2cond) matches(p RunParams) bool {
	return c.valid &&
		c.trefp == p.TREFP && c.tempC == p.TempC && c.vdd == p.VDD &&
		c.tempID == mapID(p.TempByRank) &&
		c.refID == mapID(p.TREFPByRow) &&
		c.actsID == mapID(p.ActsPerWindow)
}

// planV2For returns the SoA view of the current plan, rebuilding it when the
// base plan was recompiled (planFor allocates a fresh plan per generation,
// so pointer identity tracks staleness).
func (d *Device) planV2For() *planV2 {
	base := d.planFor()
	if d.v2plan == nil || d.v2plan.base != base {
		d.v2plan = compilePlanV2(base, d.cfg.Physics)
	}
	return d.v2plan
}

// compilePlanV2 derives the SoA constants from a compiled v1 plan.
func compilePlanV2(base *evalPlan, phys Physics) *planV2 {
	v2 := &planV2{
		base:  base,
		num:   make([]float64, len(base.cells)),
		clNum: make([]float64, len(base.clusters)),
		clKey: make([]uint64, len(base.clusters)),
	}
	for i := range base.cells {
		c := &base.cells[i]
		gainSel := 1.0
		if !c.charged {
			gainSel = phys.GainFactor
		}
		v2.num[i] = c.tau0 * gainSel / c.couplingDiv
	}
	for i := range base.clusters {
		k := &base.clusters[i]
		v2.clNum[i] = k.tau0 / k.clusterDiv
		v2.clKey[i] = 2*uint64(k.src) + 1
	}
	return v2
}

// condFor returns the conditions cache for p, rebuilding it when the
// operating conditions moved.
func (d *Device) condFor(v2 *planV2, p RunParams) *v2cond {
	c := &v2.cond
	if c.matches(p) {
		evalMet.condHits.Add(1)
		return c
	}
	evalMet.condRebuilds.Add(1)
	phys := d.cfg.Physics
	pl := v2.base

	*c = v2cond{
		valid: true,
		trefp: p.TREFP, tempC: p.TempC, vdd: p.VDD,
		tempID: mapID(p.TempByRank),
		refID:  mapID(p.TREFPByRow),
		actsID: mapID(p.ActsPerWindow),
		staticCand: c.staticCand[:0], staticBit: c.staticBit[:0],
		liveKey: c.liveKey[:0], liveCand: c.liveCand[:0],
		liveBit: c.liveBit[:0], liveWhen: c.liveWhen[:0],
		clLBand: c.clLBand[:0], clLThresh: c.clLThresh[:0],
	}

	if cap(d.envScratch) < d.geom.Ranks {
		d.envScratch = make([]float64, d.geom.Ranks)
	}
	envByRank := d.envScratch[:d.geom.Ranks]
	for rank := range envByRank {
		temp := p.TempC
		if t, ok := p.TempByRank[rank]; ok {
			temp = t
		}
		envByRank[rank] = phys.tempFactor(temp) * phys.vddFactor(p.VDD)
	}

	for ri := range pl.rows {
		row := &pl.rows[ri]
		hammer := d.hammerFor(row.key, p.ActsPerWindow)
		env := envByRank[row.key.Rank]
		trefp := p.TREFP
		if t, ok := p.TREFPByRow[row.key]; ok {
			trefp = t
		}

		thresh := trefp * (1 + phys.HammerBeta*hammer)
		for i := row.cellLo; i < row.cellHi; i++ {
			cell := &pl.cells[i]
			a := v2.num[i] * env
			fastFails := a < thresh
			if !cell.vrt {
				if fastFails {
					c.staticCand = append(c.staticCand, cell.cand)
					c.staticBit = append(c.staticBit, cell.bit)
				}
				continue
			}
			slowFails := a*cell.vrtMult < thresh
			if fastFails == slowFails {
				// Both VRT states agree: the cell is settled under these
				// conditions and its Bool draw can never change the
				// outcome. Keyed draws make skipping it safe.
				if fastFails {
					c.staticCand = append(c.staticCand, cell.cand)
					c.staticBit = append(c.staticBit, cell.bit)
				}
				continue
			}
			c.liveKey = append(c.liveKey, 2*uint64(cell.src))
			c.liveCand = append(c.liveCand, cell.cand)
			c.liveBit = append(c.liveBit, cell.bit)
			c.liveWhen = append(c.liveWhen, slowFails)
		}

		clThresh := trefp * (1 + phys.ClusterHammerB*hammer)
		band := clThresh * pl.partialBand
		for i := row.clLo; i < row.clHi; i++ {
			// tauA·exp(jit) < x  ⟺  jit < log(x/tauA): comparing the normal
			// draw against cached log thresholds replaces an exp and two
			// multiplies per cluster per run with two compares.
			tauA := v2.clNum[i] * env
			c.clLBand = append(c.clLBand, math.Log(band/tauA))
			c.clLThresh = append(c.clLThresh, math.Log(clThresh/tauA))
		}
	}
	return c
}

// v2Accumulate runs the stochastic part of one v2 run, filling the base
// plan's flip scratch: static flips are replayed, bistable VRT cells consume
// one Bool each, armed clusters one Norm each.
func (d *Device) v2Accumulate(p RunParams) *evalPlan {
	v2 := d.planV2For()
	c := d.condFor(v2, p)
	pl := v2.base

	// One draw of the run's Rand keys everything below — the bridge that
	// lets v2 ride the per-run split plumbing of farm, fleet and resume.
	rs := xrand.StreamFrom(p.RNG)

	for j := range c.staticCand {
		pl.addFlip(c.staticCand[j], int(c.staticBit[j]))
	}
	for j := range c.liveKey {
		if rs.Derive(c.liveKey[j]).BoolAt(0, 0.5) == c.liveWhen[j] {
			pl.addFlip(c.liveCand[j], int(c.liveBit[j]))
		}
	}
	sigma := d.cfg.Physics.ClusterJitter
	for i := range v2.clKey {
		jit := rs.Derive(v2.clKey[i]).NormAt(0, 0, sigma)
		if jit >= c.clLBand[i] {
			continue
		}
		k := &pl.clusters[i]
		if jit >= c.clLThresh[i] {
			pl.addFlip(k.cand, int(k.partialBit))
			continue
		}
		for _, b := range k.fullBits {
			pl.addFlip(k.cand, b)
		}
	}
	return pl
}

// runV2 evaluates one full-result run under the v2 contract. Called from
// Run after parameter validation. Flips accumulate static-first rather than
// row-major, so each word's log is canonicalized to ascending bit order —
// part of the v2 contract.
func (d *Device) runV2(p RunParams) (RunResult, error) {
	pl := d.v2Accumulate(p)
	for _, wi := range pl.touched {
		sort.Ints(pl.flips[wi])
	}
	return pl.classify(), nil
}

// runV2Counts is runV2 for callers that only read the error counts
// (AverageRuns): same draws, same flips, no error log and no sorting.
func (d *Device) runV2Counts(p RunParams) (ce, sdc, ue int, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, 0, err
	}
	evalMet.singleRuns.Add(1)
	ce, sdc, ue = d.v2Accumulate(p).classifyCounts()
	return ce, sdc, ue, nil
}
