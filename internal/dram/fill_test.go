package dram

import (
	"testing"

	"dstress/internal/addrmap"
)

func TestFillRowMatchesWriteWord(t *testing.T) {
	a := testDevice(t, 50)
	b := testDevice(t, 50)
	k := RowKey{Rank: 0, Bank: 2, Row: 7}
	a.FillRow(k, 0x3333333333333333)
	for col := 0; col < b.Geometry().WordsPerRow(); col++ {
		b.WriteWord(addrmap.Loc{Bank: 2, Row: 7, Col: col}, 0x3333333333333333)
	}
	ia, ib := a.RowImage(k), b.RowImage(k)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("col %d: %x vs %x", i, ia[i], ib[i])
		}
	}
}

func TestFillRowWordsTiles(t *testing.T) {
	d := testDevice(t, 51)
	k := RowKey{Rank: 1, Bank: 0, Row: 3}
	d.FillRowWords(k, []uint64{1, 2, 3})
	img := d.RowImage(k)
	for i, w := range img {
		if w != uint64(i%3+1) {
			t.Fatalf("col %d = %d", i, w)
		}
	}
	// Empty input is a no-op.
	d.FillRowWords(RowKey{Rank: 1, Bank: 1, Row: 3}, nil)
	if d.RowWritten(RowKey{Rank: 1, Bank: 1, Row: 3}) {
		t.Fatal("empty fill materialized a row")
	}
}

func TestFillAllUniformCoversDevice(t *testing.T) {
	d := testDevice(t, 52)
	d.FillAllUniform(0xCC)
	g := d.Geometry()
	for rank := 0; rank < g.Ranks; rank++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				k := RowKey{int32(rank), int32(bank), int32(row)}
				if !d.RowWritten(k) {
					t.Fatalf("row %+v unwritten", k)
				}
				if d.RowImage(k)[0] != 0xCC {
					t.Fatalf("row %+v wrong data", k)
				}
			}
		}
	}
}

func TestFillAllPerRow(t *testing.T) {
	d := testDevice(t, 53)
	d.FillAll(d.ChargeAllWord)
	// Every weak row now holds its charge-all word.
	for _, k := range d.WeakRows() {
		if d.RowImage(k)[5] != d.ChargeAllWord(k) {
			t.Fatalf("row %+v not charge-all", k)
		}
	}
}
