package dram

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dstress/internal/ecc"
	"dstress/internal/xrand"
)

// Batch evaluation (DESIGN.md §13). A GA generation evaluates a population
// of near-identical written states against one device under one set of
// operating conditions. The per-genome path pays full setup per candidate:
// plan compile, SoA derivation, conditions rebuild, scratch allocation. The
// batch path amortizes all of it across the generation:
//
//   - the run-invariant plan is compiled once, for the first item; every
//     later item splices only the rows its Apply actually wrote (dilated
//     ±1, because neighbour couplings read the adjacent row images) and
//     copies the untouched row-spans of the previous item's plan;
//   - the conditions tables are derived per row and copied for rows whose
//     hammer pressure did not move between items — the shared TREFP /
//     temperature / VDD conditions never move within a call;
//   - all storage comes from a sync.Pool-backed session holding two
//     ping-pong buffers, so steady-state generations allocate near zero.
//
// The contract is exact equivalence with the per-genome v2 path: for every
// item, RunBatch/AverageRunsBatch produce bit-identical results to calling
// item.Apply followed by Run/AverageRuns with the same parameters and the
// same RNG. The splice machinery shares compileRowInto with the full
// compile and replays the same conditions math per row, so a spliced plan
// is the plan a full compile would have produced. Under determinism v1 the
// batch path is rejected: v1 pins the sequential draw order, which the
// order-independent keyed accumulation below cannot honour.

// BatchItem is one genome's slot in a batch evaluation.
type BatchItem struct {
	// Apply writes the item's state onto the device — the batch equivalent
	// of a spec Deploy. Items apply cumulatively in slice order, exactly as
	// a serial per-genome evaluation deploys onto one worker's device.
	Apply func(d *Device) error

	// Acts, when non-nil, supplies this item's ActsPerWindow override: the
	// access pattern a genome drives through the memory controller is
	// per-genome state even when the refresh/temperature/voltage conditions
	// are shared. It is called once, directly after Apply — controller-level
	// producers drain pending writebacks into the device at that point, so
	// the call must precede the plan splice. The returned map must not be
	// mutated afterwards.
	Acts func() map[RowKey]float64

	// RNG is the item's pre-split generator — the same generator the
	// per-genome path would pass to Run (via RunParams.RNG) or AverageRuns.
	RNG *xrand.Rand
}

// BatchResult is the averaged measurement of one batch item, mirroring the
// aggregation the per-genome callers perform over AverageRuns and
// RunResult.CEByRank.
type BatchResult struct {
	MeanCE  float64
	MeanSDC float64
	UEFrac  float64

	// CEByRank holds the mean correctable-error count per rank, indexed by
	// rank. Nil when no run produced a CE.
	CEByRank []float64
}

// batchBuf is one of the two ping-pong buffers of a batch session: a full
// compiled plan plus the SoA constants and conditions tables the v2 kernel
// reads. Successive items alternate buffers so a splice can copy the clean
// row-spans of the previous item while writing its own.
type batchBuf struct {
	plan evalPlan

	num   []float64 // per cell: tau0·gainSel/couplingDiv (== planV2.num)
	clNum []float64 // per cluster: tau0/clusterDiv
	clKey []uint64  // per cluster: stream sub-key 2·src+1

	hammer []float64 // per plan row: the item's hammer pressure

	// Conditions tables in row-major order with per-row prefix offsets
	// (len(rows)+1 after seal), mirroring v2cond's partition into static
	// flips, bistable VRT cells and cluster log-thresholds.
	statLo   []int32
	statCand []int32
	statBit  []int32

	liveLo   []int32
	liveKey  []uint64
	liveCand []int32
	liveBit  []int32
	liveWhen []bool

	clLBand   []float64 // parallel to plan.clusters
	clLThresh []float64
}

// reset truncates every buffer capacity-preservingly for the next item.
// The flip scratch is deliberately left alone: it is drained (all inner
// slices empty) and resized to the word count by sizeFlips.
func (b *batchBuf) reset(partialBand float64) {
	b.plan.rows = b.plan.rows[:0]
	b.plan.cells = b.plan.cells[:0]
	b.plan.clusters = b.plan.clusters[:0]
	b.plan.words = b.plan.words[:0]
	b.plan.bitsArena = b.plan.bitsArena[:0]
	b.plan.touched = b.plan.touched[:0]
	b.plan.partialBand = partialBand
	b.num = b.num[:0]
	b.clNum = b.clNum[:0]
	b.clKey = b.clKey[:0]
	b.hammer = b.hammer[:0]
	b.statLo = b.statLo[:0]
	b.statCand = b.statCand[:0]
	b.statBit = b.statBit[:0]
	b.liveLo = b.liveLo[:0]
	b.liveKey = b.liveKey[:0]
	b.liveCand = b.liveCand[:0]
	b.liveBit = b.liveBit[:0]
	b.liveWhen = b.liveWhen[:0]
	b.clLBand = b.clLBand[:0]
	b.clLThresh = b.clLThresh[:0]
}

// seal appends the final prefix offsets after all rows are built.
func (b *batchBuf) seal() {
	b.statLo = append(b.statLo, int32(len(b.statCand)))
	b.liveLo = append(b.liveLo, int32(len(b.liveKey)))
}

// sizeFlips resizes the flip scratch to the plan's word count, keeping the
// accumulated capacity of every inner slice.
func (b *batchBuf) sizeFlips() {
	n := len(b.plan.words)
	f := b.plan.flips
	if cap(f) >= n {
		f = f[:n]
	} else {
		f = append(f[:cap(f)], make([][]int, n-cap(f))...)
	}
	b.plan.flips = f
}

// batchSession is the pooled scratch of one batch call. Sessions are owned
// by exactly one call at a time; the pool only recycles their capacity.
type batchSession struct {
	bufs    [2]batchBuf
	keys    []RowKey // full-compile row ordering scratch
	newKeys []RowKey // splice: sorted newly-written keys
	env     []float64
	perRank []int
}

var batchPool sync.Pool

func getBatchSession() *batchSession {
	if v := batchPool.Get(); v != nil {
		evalMet.poolGets.Add(1)
		return v.(*batchSession)
	}
	evalMet.poolMisses.Add(1)
	return &batchSession{}
}

func putBatchSession(s *batchSession) { batchPool.Put(s) }

// rowKeyLess is the canonical (rank, bank, row) order of sortRowKeys.
func rowKeyLess(a, b RowKey) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.Bank != b.Bank {
		return a.Bank < b.Bank
	}
	return a.Row < b.Row
}

// runBatchItems is the shared driver: validate, acquire a session, then for
// each item apply its writes, bring the current buffer up to date (full
// compile for the first item or after a whole-device mutation, splice
// otherwise) and hand it to the per-item run phase.
func (d *Device) runBatchItems(p RunParams, items []BatchItem,
	perItem func(sess *batchSession, i int, cur *batchBuf) error) error {
	if len(items) == 0 {
		return nil
	}
	if v := p.Version.Normalize(); v != DeterminismV2 {
		return fmt.Errorf(
			"dram: batch evaluation requires determinism contract v2, got %s",
			p.Version)
	}
	for i := range items {
		if items[i].Apply == nil {
			return fmt.Errorf("dram: batch item %d has nil Apply", i)
		}
		if items[i].RNG == nil {
			return fmt.Errorf("dram: batch item %d has nil RNG", i)
		}
	}
	pv := p
	pv.RNG = items[0].RNG
	if err := pv.Validate(); err != nil {
		return err
	}
	evalMet.batchCalls.Add(1)

	sess := getBatchSession()
	defer putBatchSession(sess)

	d.beginTracking()
	defer d.endTracking()

	// The shared environment factor per rank, constant across the call.
	phys := d.cfg.Physics
	if cap(sess.env) < d.geom.Ranks {
		sess.env = make([]float64, d.geom.Ranks)
	}
	sess.env = sess.env[:d.geom.Ranks]
	for rank := range sess.env {
		temp := p.TempC
		if t, ok := p.TempByRank[rank]; ok {
			temp = t
		}
		sess.env[rank] = phys.tempFactor(temp) * phys.vddFactor(p.VDD)
	}

	partialBand := phys.ClusterPartialBand
	if partialBand < 1 {
		partialBand = 1
	}

	for i := range items {
		if err := items[i].Apply(d); err != nil {
			return fmt.Errorf("dram: batch item %d apply: %w", i, err)
		}
		cur := &sess.bufs[i&1]
		prev := &sess.bufs[1-(i&1)]
		acts := p.ActsPerWindow
		if items[i].Acts != nil {
			acts = items[i].Acts()
		}
		if i == 0 || d.trackAll {
			d.compileBatchFull(sess, cur, p, acts, partialBand)
		} else {
			d.spliceBatch(sess, cur, prev, p, acts, partialBand)
		}
		cur.seal()
		cur.sizeFlips()
		d.resetTracking()
		evalMet.batchItems.Add(1)
		if err := perItem(sess, i, cur); err != nil {
			return err
		}
	}
	return nil
}

// compileBatchFull compiles the device's entire written state into cur —
// the once-per-generation compile the splices amortize.
func (d *Device) compileBatchFull(sess *batchSession, cur *batchBuf,
	p RunParams, acts map[RowKey]float64, partialBand float64) {
	cur.reset(partialBand)
	keys := sess.keys[:0]
	for key := range d.rows {
		keys = append(keys, key)
	}
	sortRowKeys(keys)
	sess.keys = keys
	for _, key := range keys {
		rlo := len(cur.plan.rows)
		d.compileRowInto(&cur.plan, key)
		if len(cur.plan.rows) > rlo {
			d.finishBatchRow(sess, cur, rlo, p, acts)
		}
	}
	evalMet.planCompiles.Add(1)
}

// spliceBatch brings cur up to date with the device by recompiling only the
// rows written since the previous item (dilated ±1 for neighbour couplings)
// and copying every other row-span from prev.
func (d *Device) spliceBatch(sess *batchSession, cur, prev *batchBuf,
	p RunParams, acts map[RowKey]float64, partialBand float64) {
	cur.reset(partialBand)
	evalMet.planSplices.Add(1)

	newKeys := sess.newKeys[:0]
	for key := range d.trackRows {
		newKeys = append(newKeys, key)
	}
	sortRowKeys(newKeys)
	sess.newKeys = newKeys

	// A row's compiled span depends on its own image (stored bits, cluster
	// arming) and on the images of rows ±1 (lateral/vertical couplings), so
	// the dirty set is the written set dilated by one row each way.
	dirty := func(key RowKey) bool {
		if _, ok := d.trackRows[key]; ok {
			return true
		}
		if key.Row > 0 {
			k := RowKey{key.Rank, key.Bank, key.Row - 1}
			if _, ok := d.trackRows[k]; ok {
				return true
			}
		}
		k := RowKey{key.Rank, key.Bank, key.Row + 1}
		_, ok := d.trackRows[k]
		return ok
	}

	// Merge-walk the previous plan's rows with the newly-written keys: the
	// union, in sorted order, covers every row a full compile would visit —
	// written rows without defects compile to nothing, exactly as they do
	// in the full pass.
	pi, ni := 0, 0
	prows := prev.plan.rows
	for pi < len(prows) || ni < len(newKeys) {
		var key RowKey
		fromPrev := false
		switch {
		case pi >= len(prows):
			key = newKeys[ni]
			ni++
		case ni >= len(newKeys):
			key = prows[pi].key
			fromPrev = true
			pi++
		default:
			pk, nk := prows[pi].key, newKeys[ni]
			switch {
			case pk == nk:
				key = pk
				fromPrev = true
				pi++
				ni++
			case rowKeyLess(pk, nk):
				key = pk
				fromPrev = true
				pi++
			default:
				key = nk
				ni++
			}
		}
		if !fromPrev || dirty(key) {
			evalMet.rowsRecompiled.Add(1)
			rlo := len(cur.plan.rows)
			d.compileRowInto(&cur.plan, key)
			if len(cur.plan.rows) > rlo {
				d.finishBatchRow(sess, cur, rlo, p, acts)
			}
			continue
		}
		d.copyBatchRow(sess, cur, prev, pi-1, p, acts)
	}
}

// finishBatchRow derives the SoA constants and conditions of the freshly
// compiled plan row ri. The formulas replicate compilePlanV2 and condFor
// term for term — the bit-identity contract depends on it.
func (d *Device) finishBatchRow(sess *batchSession, cur *batchBuf, ri int,
	p RunParams, acts map[RowKey]float64) {
	phys := d.cfg.Physics
	pl := &cur.plan
	row := &pl.rows[ri]

	for i := row.cellLo; i < row.cellHi; i++ {
		c := &pl.cells[i]
		gainSel := 1.0
		if !c.charged {
			gainSel = phys.GainFactor
		}
		cur.num = append(cur.num, c.tau0*gainSel/c.couplingDiv)
	}
	for i := row.clLo; i < row.clHi; i++ {
		k := &pl.clusters[i]
		cur.clNum = append(cur.clNum, k.tau0/k.clusterDiv)
		cur.clKey = append(cur.clKey, 2*uint64(k.src)+1)
	}

	hammer := d.hammerFor(row.key, acts)
	cur.hammer = append(cur.hammer, hammer)
	d.condRowInto(sess, cur, ri, hammer, p)
}

// condRowInto derives one row's conditions tables, mirroring condFor's
// per-row body over the batch buffer's SoA slices.
func (d *Device) condRowInto(sess *batchSession, cur *batchBuf, ri int,
	hammer float64, p RunParams) {
	phys := d.cfg.Physics
	pl := &cur.plan
	row := &pl.rows[ri]
	env := sess.env[row.key.Rank]
	trefp := p.TREFP
	if t, ok := p.TREFPByRow[row.key]; ok {
		trefp = t
	}

	cur.statLo = append(cur.statLo, int32(len(cur.statCand)))
	cur.liveLo = append(cur.liveLo, int32(len(cur.liveKey)))

	thresh := trefp * (1 + phys.HammerBeta*hammer)
	for i := row.cellLo; i < row.cellHi; i++ {
		cell := &pl.cells[i]
		a := cur.num[i] * env
		fastFails := a < thresh
		if !cell.vrt {
			if fastFails {
				cur.statCand = append(cur.statCand, cell.cand)
				cur.statBit = append(cur.statBit, cell.bit)
			}
			continue
		}
		slowFails := a*cell.vrtMult < thresh
		if fastFails == slowFails {
			if fastFails {
				cur.statCand = append(cur.statCand, cell.cand)
				cur.statBit = append(cur.statBit, cell.bit)
			}
			continue
		}
		cur.liveKey = append(cur.liveKey, 2*uint64(cell.src))
		cur.liveCand = append(cur.liveCand, cell.cand)
		cur.liveBit = append(cur.liveBit, cell.bit)
		cur.liveWhen = append(cur.liveWhen, slowFails)
	}

	clThresh := trefp * (1 + phys.ClusterHammerB*hammer)
	band := clThresh * pl.partialBand
	for i := row.clLo; i < row.clHi; i++ {
		tauA := cur.clNum[i] * env
		cur.clLBand = append(cur.clLBand, math.Log(band/tauA))
		cur.clLThresh = append(cur.clLThresh, math.Log(clThresh/tauA))
	}
}

// copyBatchRow carries prev's plan row pi into cur unchanged, fixing up the
// candidate-word indices for cur's layout. When the row's hammer pressure
// is also unchanged its conditions spans copy too; otherwise they are
// re-derived from the copied plan spans.
func (d *Device) copyBatchRow(sess *batchSession, cur, prev *batchBuf,
	pi int, p RunParams, acts map[RowKey]float64) {
	evalMet.rowsCopied.Add(1)
	pr := &prev.plan.rows[pi]
	pl := &cur.plan

	wordLo := int32(len(pl.words))
	delta := wordLo - pr.wordLo
	pl.words = append(pl.words, prev.plan.words[pr.wordLo:pr.wordHi]...)

	cellLo := int32(len(pl.cells))
	for i := pr.cellLo; i < pr.cellHi; i++ {
		c := prev.plan.cells[i]
		c.cand += delta
		pl.cells = append(pl.cells, c)
	}
	cur.num = append(cur.num, prev.num[pr.cellLo:pr.cellHi]...)

	clLo := int32(len(pl.clusters))
	for i := pr.clLo; i < pr.clHi; i++ {
		k := prev.plan.clusters[i]
		k.cand += delta
		// Rebuild fullBits in cur's own arena: prev's arena is truncated
		// and reused on the next splice, so aliasing its backing array
		// would let a later compile overwrite bits still referenced here.
		lo := len(pl.bitsArena)
		pl.bitsArena = append(pl.bitsArena, k.fullBits...)
		k.fullBits = pl.bitsArena[lo:len(pl.bitsArena):len(pl.bitsArena)]
		pl.clusters = append(pl.clusters, k)
	}
	cur.clNum = append(cur.clNum, prev.clNum[pr.clLo:pr.clHi]...)
	cur.clKey = append(cur.clKey, prev.clKey[pr.clLo:pr.clHi]...)

	ri := len(pl.rows)
	pl.rows = append(pl.rows, planRow{
		key:    pr.key,
		cellLo: cellLo, cellHi: int32(len(pl.cells)),
		clLo: clLo, clHi: int32(len(pl.clusters)),
		wordLo: wordLo, wordHi: int32(len(pl.words)),
	})

	hammer := d.hammerFor(pr.key, acts)
	cur.hammer = append(cur.hammer, hammer)
	if hammer != prev.hammer[pi] {
		evalMet.condRebuilds.Add(1)
		d.condRowInto(sess, cur, ri, hammer, p)
		return
	}
	// Identical inputs: the conditions tables are bit-identical, so copy
	// them with the same candidate-index fixup.
	evalMet.condHits.Add(1)
	cur.statLo = append(cur.statLo, int32(len(cur.statCand)))
	cur.liveLo = append(cur.liveLo, int32(len(cur.liveKey)))
	for j := prev.statLo[pi]; j < prev.statLo[pi+1]; j++ {
		cur.statCand = append(cur.statCand, prev.statCand[j]+delta)
		cur.statBit = append(cur.statBit, prev.statBit[j])
	}
	for j := prev.liveLo[pi]; j < prev.liveLo[pi+1]; j++ {
		cur.liveKey = append(cur.liveKey, prev.liveKey[j])
		cur.liveCand = append(cur.liveCand, prev.liveCand[j]+delta)
		cur.liveBit = append(cur.liveBit, prev.liveBit[j])
		cur.liveWhen = append(cur.liveWhen, prev.liveWhen[j])
	}
	cur.clLBand = append(cur.clLBand, prev.clLBand[pr.clLo:pr.clHi]...)
	cur.clLThresh = append(cur.clLThresh, prev.clLThresh[pr.clLo:pr.clHi]...)
}

// batchAccumulate runs the stochastic part of one run over the batch
// buffer, filling its flip scratch. The addFlip sequence — statics, then
// live VRT cells, then clusters, each in row-major table order — is exactly
// v2Accumulate's, so the accumulated flips match the per-genome kernel's.
func (d *Device) batchAccumulate(cur *batchBuf, rng *xrand.Rand) {
	pl := &cur.plan
	rs := xrand.StreamFrom(rng)
	for j := range cur.statCand {
		pl.addFlip(cur.statCand[j], int(cur.statBit[j]))
	}
	for j := range cur.liveKey {
		if rs.Derive(cur.liveKey[j]).BoolAt(0, 0.5) == cur.liveWhen[j] {
			pl.addFlip(cur.liveCand[j], int(cur.liveBit[j]))
		}
	}
	sigma := d.cfg.Physics.ClusterJitter
	for i := range cur.clKey {
		jit := rs.Derive(cur.clKey[i]).NormAt(0, 0, sigma)
		if jit >= cur.clLBand[i] {
			continue
		}
		k := &pl.clusters[i]
		if jit >= cur.clLThresh[i] {
			pl.addFlip(k.cand, int(k.partialBit))
			continue
		}
		for _, b := range k.fullBits {
			pl.addFlip(k.cand, b)
		}
	}
}

// classifyCountsRank is classifyCounts plus per-rank CE counting into
// perRank (indexed by rank), for callers that aggregate the per-rank CE
// distribution without building the error log.
func (pl *evalPlan) classifyCountsRank(perRank []int) (ce, sdc, ue int) {
	for _, wi := range pl.touched {
		bits := pl.flips[wi]
		pw := &pl.words[wi]
		word := pw.enc
		for _, b := range bits {
			word = word.FlipBit(b)
		}
		dec := ecc.Decode(word)
		switch {
		case dec.Status == ecc.Uncorrectable:
			ue++
		case dec.Data != pw.original:
			sdc++
		case dec.Status == ecc.Corrected:
			ce++
			perRank[pw.key.Rank]++
		}
		pl.flips[wi] = bits[:0]
	}
	pl.touched = pl.touched[:0]
	return ce, sdc, ue
}

// RunBatch evaluates every item with one full-result run each, applying the
// items cumulatively in order. For each item the result — including the
// error log — is bit-identical to item.Apply followed by Run with
// RunParams.RNG = item.RNG under determinism v2.
func (d *Device) RunBatch(p RunParams, items []BatchItem) ([]RunResult, error) {
	out := make([]RunResult, len(items))
	err := d.runBatchItems(p, items,
		func(sess *batchSession, i int, cur *batchBuf) error {
			d.batchAccumulate(cur, items[i].RNG)
			evalMet.batchRuns.Add(1)
			pl := &cur.plan
			for _, wi := range pl.touched {
				sort.Ints(pl.flips[wi])
			}
			out[i] = pl.classify()
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AverageRunsBatch evaluates every item over n runs with fresh splits of
// the item's RNG — the batch equivalent of AverageRuns, extended with the
// per-rank CE means the server-level aggregation reads. Results are
// bit-identical to the per-genome sequence of Apply + AverageRuns calls.
func (d *Device) AverageRunsBatch(p RunParams, n int, items []BatchItem) ([]BatchResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dram: AverageRunsBatch n = %d", n)
	}
	out := make([]BatchResult, len(items))
	ranks := d.geom.Ranks
	err := d.runBatchItems(p, items,
		func(sess *batchSession, i int, cur *batchBuf) error {
			if cap(sess.perRank) < ranks {
				sess.perRank = make([]int, ranks)
			}
			perRank := sess.perRank[:ranks]
			clear(perRank)

			var ceSum, sdcSum, ues int
			rng := items[i].RNG
			for r := 0; r < n; r++ {
				d.batchAccumulate(cur, rng.Split())
				evalMet.batchRuns.Add(1)
				ce, sdc, ue := cur.plan.classifyCountsRank(perRank)
				ceSum += ce
				sdcSum += sdc
				if ue > 0 {
					ues++
				}
			}
			res := BatchResult{
				MeanCE:  float64(ceSum) / float64(n),
				MeanSDC: float64(sdcSum) / float64(n),
				UEFrac:  float64(ues) / float64(n),
			}
			for rank, ct := range perRank {
				if ct == 0 {
					continue
				}
				if res.CEByRank == nil {
					res.CEByRank = make([]float64, ranks)
				}
				res.CEByRank[rank] = float64(ct) / float64(n)
			}
			out[i] = res
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}
