package dram

import (
	"fmt"

	"dstress/internal/addrmap"
	"dstress/internal/xrand"
)

// CellType distinguishes the two DRAM cell designs: a true-cell stores a
// logical '1' in the charged state, an anti-cell stores a logical '0'.
type CellType int

// The two cell designs.
const (
	TrueCell CellType = iota
	AntiCell
)

func (c CellType) String() string {
	if c == TrueCell {
		return "true-cell"
	}
	return "anti-cell"
}

// bitsPerWord is the width of a stored ECC word: 64 data + 8 check bits,
// one bit per chip of the 72-chip DIMM.
const bitsPerWord = 72

// RowKey identifies a row of one bank of one rank. It is the map key used
// for row images, weak-cell indices and activation counts.
type RowKey struct {
	Rank, Bank, Row int32
}

// Key builds a RowKey from an address-map location.
func Key(l addrmap.Loc) RowKey {
	return RowKey{Rank: int32(l.Rank), Bank: int32(l.Bank), Row: int32(l.Row)}
}

// Loc converts the key back to a location at column 0.
func (k RowKey) Loc() addrmap.Loc {
	return addrmap.Loc{Rank: int(k.Rank), Bank: int(k.Bank), Row: int(k.Row)}
}

// WeakCell is one retention-weak cell of the defect map.
type WeakCell struct {
	Key     RowKey
	WordCol int     // 64-bit word column within the row
	Bit     int     // bit within the stored word: 0..63 data, 64..71 check
	Tau0    float64 // base retention at TRefC, nominal VDD (seconds)
	VRT     bool    // cell exhibits variable retention time
	VRTMult float64 // retention multiplier of the alternate VRT state
}

// Cluster is a clustered multi-bit defect: several anti-cells in one word
// that share a retention time and strong mutual coupling, so that when the
// whole cluster is charged it fails as a multi-bit (uncorrectable) error.
type Cluster struct {
	Key     RowKey
	WordCol int
	Bits    []int   // data-bit positions within the word, all anti-cells
	Tau0    float64 // seconds at TRefC, nominal VDD
	// Neighbours holds the data-bit values of the cells flanking the
	// cluster (word bits 16, 19, 20, 23) that put those cells in the
	// charged state. Each cluster draws its own signature — defect
	// structures differ — which is why several dissimilar data patterns
	// maximize the UE count and the paper's UE search never converges.
	Neighbours [4]bool
}

// Device is one simulated DIMM.
type Device struct {
	cfg  Config
	geom addrmap.Geometry

	rows map[RowKey][]uint64 // materialized row images (data bits only)

	weak      []WeakCell
	weakByRow map[RowKey][]int

	clusters      []Cluster
	clustersByRow map[RowKey][]int

	remap map[int32]map[int]int // bank -> logical word col -> physical col

	scrambleSalt uint64
	phaseSalt    uint64

	weakRows []RowKey // rows holding defects, sorted; frozen after NewDevice

	// gen counts mutations of evaluation-relevant state (row images via
	// WriteWord/FillRow/FillRowWords/Reset, defect parameters via Age). The
	// compiled evaluation plan (plan.go) and its scratch buffers are keyed
	// on it; a stale generation triggers recompilation on the next Run.
	gen        uint64
	plan       *evalPlan
	v2plan     *planV2 // SoA view for determinism v2, derived from plan
	envScratch []float64

	// Dirty-row tracking for the batch evaluation path (batch.go). While
	// tracking is on, every row-image write records its key so the next
	// batch item can splice only the touched row-spans of the previous
	// item's plan. Whole-device mutations (Reset, Age) set trackAll, which
	// forces a full recompile instead of a splice.
	tracking  bool
	trackAll  bool
	trackRows map[RowKey]struct{}
}

// dirty invalidates the compiled evaluation plan. Every mutator of state
// that Run reads must call it.
func (d *Device) dirty() { d.gen++ }

// noteWrite records a row-image write for batch splicing. Mutators that
// change state beyond a single row's image (Reset, Age) call noteAll
// instead.
func (d *Device) noteWrite(k RowKey) {
	if d.tracking && !d.trackAll {
		d.trackRows[k] = struct{}{}
	}
}

// noteAll marks the whole device dirty for batch splicing.
func (d *Device) noteAll() {
	if d.tracking {
		d.trackAll = true
	}
}

// beginTracking starts dirty-row tracking; endTracking stops it. Only the
// batch path uses tracking, and a Device is not safe for concurrent use, so
// nesting cannot occur.
func (d *Device) beginTracking() {
	d.tracking = true
	d.trackAll = false
	if d.trackRows == nil {
		d.trackRows = make(map[RowKey]struct{})
	} else {
		clear(d.trackRows)
	}
}

func (d *Device) endTracking() {
	d.tracking = false
	d.trackAll = false
	clear(d.trackRows)
}

// resetTracking clears the recorded rows between batch items.
func (d *Device) resetTracking() {
	d.trackAll = false
	clear(d.trackRows)
}

// ClusterBitPositions are the in-word data bits occupied by every defect
// cluster. The paper's Fig 8d observation — bits 17, 18, 21 and 22 are '0'
// in every discovered UE pattern — is the signature of these positions: the
// cluster cells are anti-cells, so they are charged (and can fail together)
// only when all four bits hold '0'.
var ClusterBitPositions = []int{17, 18, 21, 22}

// NewDevice builds the device and samples its defect map from cfg.Seed.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StrengthScale == 0 {
		cfg.StrengthScale = 1
	}
	d := &Device{
		cfg:           cfg,
		geom:          cfg.Geometry,
		rows:          make(map[RowKey][]uint64),
		weakByRow:     make(map[RowKey][]int),
		clustersByRow: make(map[RowKey][]int),
		remap:         make(map[int32]map[int]int),
	}
	root := xrand.New(cfg.Seed)
	d.scrambleSalt = root.Uint64()
	d.phaseSalt = root.Uint64()
	d.sampleWeakCells(root.Split())
	d.sampleClusters(root.Split())
	d.sampleRemaps(root.Split())
	d.weakRows = d.computeWeakRows()
	return d, nil
}

// MustNewDevice is NewDevice that panics on error; for tests and examples.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the address-decoder geometry.
func (d *Device) Geometry() addrmap.Geometry { return d.geom }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

func (d *Device) sampleWeakCells(rng *xrand.Rand) {
	p := d.cfg.Physics
	for rank := 0; rank < d.geom.Ranks; rank++ {
		for i := 0; i < d.cfg.WeakCellsPerRank; i++ {
			key := RowKey{
				Rank: int32(rank),
				Bank: int32(rng.Intn(d.geom.Banks)),
				Row:  int32(rng.Intn(d.geom.Rows)),
			}
			wc := WeakCell{
				Key:     key,
				WordCol: rng.Intn(d.geom.WordsPerRow()),
				Bit:     rng.Intn(bitsPerWord),
				Tau0: (p.TauFloor + rng.LogNorm(p.RetMu, p.RetSigma)) *
					d.cfg.StrengthScale,
			}
			if rng.Bool(p.VRTProb) {
				wc.VRT = true
				wc.VRTMult = p.VRTLow + rng.Float64()*(p.VRTHigh-p.VRTLow)
			}
			d.weakByRow[key] = append(d.weakByRow[key], len(d.weak))
			d.weak = append(d.weak, wc)
		}
	}
}

// clusterSignatures are the neighbour-value signatures clusters draw from.
// They are chosen so that no traditional micro-benchmark fill reaches the
// full external coupling: all-0s matches at most 2 positions of any
// signature, all-1s leaves every cluster discharged, and the checkerboard's
// neighbour values (0,1,0,1) match at most one position.
var clusterSignatures = [][4]bool{
	{true, false, true, false},
	{true, true, true, false},
	{true, false, true, true},
}

func (d *Device) sampleClusters(rng *xrand.Rand) {
	p := d.cfg.Physics
	for rank := 0; rank < d.geom.Ranks; rank++ {
		for i := 0; i < d.cfg.ClustersPerRank; i++ {
			key := RowKey{
				Rank: int32(rank),
				Bank: int32(rng.Intn(d.geom.Banks)),
				Row:  int32(rng.Intn(d.geom.Rows)),
			}
			cl := Cluster{
				Key:     key,
				WordCol: rng.Intn(d.geom.WordsPerRow()),
				Bits:    append([]int(nil), ClusterBitPositions...),
				// Small spread keeps the failure-onset temperature shared
				// across clusters and DIMMs — the paper finds the UE
				// probability depends mainly on temperature, so the defect
				// clusters deliberately do not follow the per-DIMM
				// retention strength.
				Tau0: p.ClusterTau0 * (0.995 + 0.01*rng.Float64()),
				// Round-robin signatures guarantee every signature occurs.
				Neighbours: clusterSignatures[i%len(clusterSignatures)],
			}
			d.clustersByRow[key] = append(d.clustersByRow[key], len(d.clusters))
			d.clusters = append(d.clusters, cl)
		}
	}
}

func (d *Device) sampleRemaps(rng *xrand.Rand) {
	for bank := 0; bank < d.geom.Banks; bank++ {
		m := make(map[int]int)
		for i := 0; i < d.cfg.RemappedColsPerBank; i++ {
			faulty := rng.Intn(d.geom.WordsPerRow())
			spare := d.geom.WordsPerRow() - 1 - i
			// Swap the two columns so the logical→physical column mapping
			// stays a bijection (the spare's former position is reused).
			_, fDup := m[faulty]
			_, sDup := m[spare]
			if faulty != spare && !fDup && !sDup {
				m[faulty] = spare
				m[spare] = faulty
			}
		}
		d.remap[int32(bank)] = m
	}
}

// mix hashes a row identity with a salt; used to derive deterministic
// per-row properties without storing per-row metadata.
func mix(salt uint64, k RowKey) uint64 {
	z := salt ^ uint64(k.Rank)<<48 ^ uint64(uint32(k.Bank))<<32 ^
		uint64(uint32(k.Row))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashFrac(salt uint64, k RowKey) float64 {
	return float64(mix(salt, k)>>11) / (1 << 53)
}

// ScrambleMask returns the XOR mask applied to a row's within-word data-bit
// order, 0 for unscrambled rows. The mask is self-inverse: physical and
// logical positions are related by position^mask in both directions. Masks
// 2 and 3 shift data relative to the 4-column-periodic cell-type layout,
// which is exactly what defeats layout-assuming data patterns.
func (d *Device) ScrambleMask(k RowKey) int {
	f := hashFrac(d.scrambleSalt, k)
	if f >= d.cfg.ScrambledRowFrac {
		return 0
	}
	// Split scrambled rows between the two misaligning masks.
	if f < d.cfg.ScrambledRowFrac/2 {
		return 2
	}
	return 3
}

// PhaseFlipped reports whether the row's cell-type layout starts with
// anti-cells (layout aatt instead of ttaa).
func (d *Device) PhaseFlipped(k RowKey) bool {
	return hashFrac(d.phaseSalt, k) < d.cfg.PhaseFlipRowFrac
}

// physWordCol applies faulty-column remapping.
func (d *Device) physWordCol(bank int32, col int) int {
	if to, ok := d.remap[bank][col]; ok {
		return to
	}
	return col
}

// CellTypeAt returns the design of the cell at a physical bit position
// within a row. The layout is the 4-periodic true,true,anti,anti order the
// paper infers for its DIMMs, optionally phase-flipped per row.
func (d *Device) CellTypeAt(k RowKey, physBit int) CellType {
	pos := physBit
	if d.PhaseFlipped(k) {
		pos += 2
	}
	if pos%4 < 2 {
		return TrueCell
	}
	return AntiCell
}

// physBit returns the physical bit position of stored bit `bit` (0..71) of
// word `col` in row k, applying column remap and within-word scrambling.
// Check bits (64..71) are not scrambled.
func (d *Device) physBit(k RowKey, col, bit int) int {
	pc := d.physWordCol(k.Bank, col)
	if bit < 64 {
		bit ^= d.ScrambleMask(k)
	}
	return pc*bitsPerWord + bit
}

// WriteWord stores a 64-bit data word at the given location. Check bits are
// implied (recomputed from data when the row is evaluated), matching a
// memory controller that writes full ECC words.
func (d *Device) WriteWord(l addrmap.Loc, v uint64) {
	k := Key(l)
	img := d.rows[k]
	if img == nil {
		img = make([]uint64, d.geom.WordsPerRow())
		d.rows[k] = img
	}
	img[l.Col] = v
	d.dirty()
	d.noteWrite(k)
}

// ReadWord returns the stored word and whether the row has been written.
func (d *Device) ReadWord(l addrmap.Loc) (uint64, bool) {
	img, ok := d.rows[Key(l)]
	if !ok {
		return 0, false
	}
	return img[l.Col], true
}

// RowImage returns the raw words of a row, or nil if never written. The
// slice is the live image: callers must treat it as read-only and write
// through WriteWord/FillRow, or the evaluation plan goes stale unnoticed.
func (d *Device) RowImage(k RowKey) []uint64 { return d.rows[k] }

// RowWritten reports whether the row holds data.
func (d *Device) RowWritten(k RowKey) bool { _, ok := d.rows[k]; return ok }

// Reset discards all stored data (power cycle), keeping the defect map.
func (d *Device) Reset() {
	d.rows = make(map[RowKey][]uint64)
	d.dirty()
	d.noteAll()
}

// WeakCells returns the defect map's weak cells (shared slice; read only).
func (d *Device) WeakCells() []WeakCell { return d.weak }

// Clusters returns the multi-bit defect clusters (shared slice; read only).
func (d *Device) Clusters() []Cluster { return d.clusters }

// WeakRows returns the keys of all rows containing weak cells or clusters,
// sorted by (rank, bank, row). These are the "error-prone rows" the paper's
// 24-KByte and access templates target. The set is computed once at
// construction — defect positions are immutable for the device's lifetime
// (Age only rescales retention times) — and returned as a fresh copy.
func (d *Device) WeakRows() []RowKey {
	return append([]RowKey(nil), d.weakRows...)
}

// computeWeakRows builds the sorted defect-row set for WeakRows.
func (d *Device) computeWeakRows() []RowKey {
	set := make(map[RowKey]bool, len(d.weakByRow)+len(d.clustersByRow))
	for k := range d.weakByRow {
		set[k] = true
	}
	for k := range d.clustersByRow {
		set[k] = true
	}
	keys := make([]RowKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sortRowKeys(keys)
	return keys
}

// String summarises the device.
func (d *Device) String() string {
	return fmt.Sprintf("dram.Device{%d ranks, %d banks x %d rows, %d weak cells, %d clusters}",
		d.geom.Ranks, d.geom.Banks, d.geom.Rows, len(d.weak), len(d.clusters))
}
