package dram

import (
	"fmt"
	"math"
	"sort"

	"dstress/internal/ecc"
	"dstress/internal/xrand"
)

// RunParams are the operating conditions of one evaluation run — one
// simulated execution interval of a virus or benchmark, corresponding to the
// paper's 2-hour measurement runs.
type RunParams struct {
	TREFP float64 // refresh period in seconds (nominal DDR3: 0.064)
	TempC float64 // DIMM temperature in °C
	VDD   float64 // supply voltage in volts (nominal DDR3: 1.5)

	// TempByRank overrides TempC per rank: the thermal testbed heats each
	// DIMM rank independently, so experiments can stress one rank hotter.
	// Ranks absent from the map use TempC.
	TempByRank map[int]float64

	// TREFPByRow overrides the refresh period per row, modelling
	// retention-aware refresh schemes (RAIDR-style): rows binned as weak
	// refresh faster than the rest. Rows absent from the map use TREFP.
	//
	// The override maps (TempByRank, TREFPByRow, ActsPerWindow) are
	// identified by pointer in the v2 conditions cache: callers may reuse a
	// map across runs or build a fresh one per run, but must not mutate one
	// in place between runs of the same device.
	TREFPByRow map[RowKey]float64

	// ActsPerWindow gives, per row, the number of activations the row
	// receives during one refresh window (as produced by the memory
	// controller model). Rows absent from the map are not activated beyond
	// refresh. Nil means no explicit accesses.
	ActsPerWindow map[RowKey]float64

	// RNG drives per-run stochastic effects (VRT state, cluster jitter). It
	// must be non-nil; re-running with a fresh generator models the
	// run-to-run variation the paper averages over ten runs.
	RNG *xrand.Rand

	// Version selects the determinism contract the stochastic terms follow.
	// The zero value means DeterminismV1 — the original sequential-draw
	// contract every recorded experiment and v1 checkpoint is pinned to.
	// DeterminismV2 evaluates on counter-based per-cell streams (run_v2.go):
	// same physics, different (and order-independent) noise draws, so v1 and
	// v2 results are each self-consistent but not comparable to one another.
	Version DeterminismVersion
}

// Validate reports whether the parameters are usable.
func (p RunParams) Validate() error {
	switch {
	case p.TREFP <= 0:
		return fmt.Errorf("dram: TREFP = %v", p.TREFP)
	case p.VDD <= 0:
		return fmt.Errorf("dram: VDD = %v", p.VDD)
	case p.RNG == nil:
		return fmt.Errorf("dram: RunParams.RNG is nil")
	}
	return p.Version.Validate()
}

// WordError describes one corrupted 72-bit word observed in a run.
type WordError struct {
	Key     RowKey
	WordCol int
	Flips   []int // codeword bit positions that flipped (0..71)
	Status  ecc.Status
	SDC     bool // decode returned wrong data without signalling UE
}

// RunResult aggregates the ECC log of one run.
type RunResult struct {
	CE  int // correctable errors (one per affected word)
	UE  int // uncorrectable (detected multi-bit) errors
	SDC int // silent data corruptions (miscorrected or aliased words)

	// CEByRank splits the CEs per rank, for spatial-distribution figures.
	CEByRank map[int]int

	Errors []WordError
}

// HasUE reports whether the run hit at least one uncorrectable error; the
// paper's framework kills a virus as soon as the OS sees a UE.
func (r RunResult) HasUE() bool { return r.UE > 0 }

type flipKey struct {
	key RowKey
	col int
}

// Run evaluates the device under the given conditions: every weak cell and
// defect cluster located in a written row is tested against the retention
// model, the resulting bit flips are grouped per word, and each corrupted
// word is pushed through the SECDED decoder to classify it as CE, UE or SDC.
//
// Run executes on the compiled evaluation plan (see plan.go): everything
// that depends only on the written state is resolved once per state, and
// each run applies only the operating conditions, the stochastic VRT/jitter
// terms and the threshold compares. Results — including the RNG stream
// consumed and the Errors log — are bit-identical to the retained reference
// path (runReference), which the differential suite enforces. Errors are
// sorted by (rank, bank, row, word col).
//
// A Device is not safe for concurrent use; the farm gives every worker its
// own clone.
func (d *Device) Run(p RunParams) (RunResult, error) {
	if err := p.Validate(); err != nil {
		return RunResult{}, err
	}
	evalMet.singleRuns.Add(1)
	if p.Version.Normalize() == DeterminismV2 {
		return d.runV2(p)
	}
	phys := d.cfg.Physics
	pl := d.planFor()

	if cap(d.envScratch) < d.geom.Ranks {
		d.envScratch = make([]float64, d.geom.Ranks)
	}
	envByRank := d.envScratch[:d.geom.Ranks]
	for rank := range envByRank {
		temp := p.TempC
		if t, ok := p.TempByRank[rank]; ok {
			temp = t
		}
		envByRank[rank] = phys.tempFactor(temp) * phys.vddFactor(p.VDD)
	}

	rng := p.RNG
	for ri := range pl.rows {
		row := &pl.rows[ri]
		hammer := d.hammerFor(row.key, p.ActsPerWindow)
		envFactor := envByRank[row.key.Rank]
		trefp := p.TREFP
		if t, ok := p.TREFPByRow[row.key]; ok {
			trefp = t
		}
		hammerDiv := 1 + phys.HammerBeta*hammer
		clHammerDiv := 1 + phys.ClusterHammerB*hammer

		for i := row.cellLo; i < row.cellHi; i++ {
			c := &pl.cells[i]
			tau := c.tau0 * envFactor
			if c.vrt && rng.Bool(0.5) {
				tau *= c.vrtMult
			}
			tau /= c.couplingDiv
			tau /= hammerDiv
			var fails bool
			if c.charged {
				fails = tau < trefp
			} else {
				fails = tau*phys.GainFactor < trefp
			}
			if fails {
				pl.addFlip(c.cand, int(c.bit))
			}
		}

		for i := row.clLo; i < row.clHi; i++ {
			k := &pl.clusters[i]
			jitter := math.Exp(rng.Norm(0, phys.ClusterJitter))
			tau := k.tau0 * envFactor * jitter
			tau /= k.clusterDiv
			tau /= clHammerDiv
			if tau >= trefp*pl.partialBand {
				continue
			}
			if tau >= trefp {
				pl.addFlip(k.cand, int(k.partialBit))
				continue
			}
			for _, b := range k.fullBits {
				pl.addFlip(k.cand, b)
			}
		}
	}

	return pl.classify(), nil
}

// classify decodes the accumulated flips of a run, draining the scratch.
// Corrupted words are visited in index order — candidates are laid out
// row-major with ascending word columns, so the log comes out sorted.
// Touched indices can be out of order only within one row. Both determinism
// versions share this tail: flips in, sorted ECC log out.
func (pl *evalPlan) classify() RunResult {
	sort.Ints(pl.touched)
	res := RunResult{CEByRank: make(map[int]int)}
	for _, wi := range pl.touched {
		bits := pl.flips[wi]
		pw := &pl.words[wi]
		word := pw.enc
		for _, b := range bits {
			word = word.FlipBit(b)
		}
		dec := ecc.Decode(word)
		we := WordError{Key: pw.key, WordCol: pw.col,
			Flips: append([]int(nil), bits...), Status: dec.Status}
		switch {
		case dec.Status == ecc.Uncorrectable:
			res.UE++
		case dec.Data != pw.original:
			we.SDC = true
			res.SDC++
		case dec.Status == ecc.Corrected:
			res.CE++
			res.CEByRank[int(pw.key.Rank)]++
		}
		res.Errors = append(res.Errors, we)
		pl.flips[wi] = bits[:0]
	}
	pl.touched = pl.touched[:0]
	return res
}

// classifyCounts is classify for callers that never read the error log: the
// same SECDED verdict per corrupted word, but only the counts — no sorting,
// no per-word allocation. Identical flips give identical counts, so the two
// tails are interchangeable for averaging.
func (pl *evalPlan) classifyCounts() (ce, sdc, ue int) {
	for _, wi := range pl.touched {
		bits := pl.flips[wi]
		pw := &pl.words[wi]
		word := pw.enc
		for _, b := range bits {
			word = word.FlipBit(b)
		}
		dec := ecc.Decode(word)
		switch {
		case dec.Status == ecc.Uncorrectable:
			ue++
		case dec.Data != pw.original:
			sdc++
		case dec.Status == ecc.Corrected:
			ce++
		}
		pl.flips[wi] = bits[:0]
	}
	pl.touched = pl.touched[:0]
	return ce, sdc, ue
}

// runReference is the direct (plan-free) evaluation the fast path is
// verified against: it re-derives row order, physical positions, charge
// states and couplings on every run. It must stay semantically frozen — the
// differential suite in plan_test.go runs it against Run across seeds,
// temperatures, scrambled/remapped rows, hammer patterns and per-row TREFP
// overrides and requires bit-identical results.
func (d *Device) runReference(p RunParams) (RunResult, error) {
	if err := p.Validate(); err != nil {
		return RunResult{}, err
	}
	phys := d.cfg.Physics
	envByRank := make([]float64, d.geom.Ranks)
	for rank := range envByRank {
		temp := p.TempC
		if t, ok := p.TempByRank[rank]; ok {
			temp = t
		}
		envByRank[rank] = phys.tempFactor(temp) * phys.vddFactor(p.VDD)
	}

	flips := make(map[flipKey][]int)

	// Iterate written rows in a fixed order: evaluation consumes the run's
	// RNG stream, so the order must not depend on map iteration.
	keys := make([]RowKey, 0, len(d.rows))
	for key := range d.rows {
		keys = append(keys, key)
	}
	sortRowKeys(keys)

	for _, key := range keys {
		hammer := d.hammerFor(key, p.ActsPerWindow)
		envFactor := envByRank[key.Rank]
		rp := p
		if t, ok := p.TREFPByRow[key]; ok {
			rp.TREFP = t
		}

		for _, idx := range d.weakByRow[key] {
			w := &d.weak[idx]
			if d.weakCellFails(w, key, envFactor, hammer, rp) {
				fk := flipKey{key, w.WordCol}
				flips[fk] = append(flips[fk], w.Bit)
			}
		}

		for _, idx := range d.clustersByRow[key] {
			c := &d.clusters[idx]
			d.clusterFails(c, key, envFactor, hammer, rp, flips)
		}
	}

	// Log errors in (rank, bank, row, word col) order, not map order: the
	// error log of two identical runs must be identical.
	fks := make([]flipKey, 0, len(flips))
	for fk := range flips {
		fks = append(fks, fk)
	}
	sort.Slice(fks, func(i, j int) bool {
		a, b := fks[i], fks[j]
		if a.key != b.key {
			if a.key.Rank != b.key.Rank {
				return a.key.Rank < b.key.Rank
			}
			if a.key.Bank != b.key.Bank {
				return a.key.Bank < b.key.Bank
			}
			return a.key.Row < b.key.Row
		}
		return a.col < b.col
	})

	res := RunResult{CEByRank: make(map[int]int)}
	for _, fk := range fks {
		bits := flips[fk]
		img := d.rows[fk.key]
		original := img[fk.col]
		word := ecc.Encode(original)
		for _, b := range bits {
			word = word.FlipBit(b)
		}
		dec := ecc.Decode(word)
		we := WordError{Key: fk.key, WordCol: fk.col, Flips: bits,
			Status: dec.Status}
		switch {
		case dec.Status == ecc.Uncorrectable:
			res.UE++
		case dec.Data != original:
			we.SDC = true
			res.SDC++
		case dec.Status == ecc.Corrected:
			res.CE++
			res.CEByRank[int(fk.key.Rank)]++
		}
		res.Errors = append(res.Errors, we)
	}
	return res, nil
}

// hammerFor returns the per-window activations of the rows physically
// adjacent to key — the disturbance its cells experience.
func (d *Device) hammerFor(key RowKey, acts map[RowKey]float64) float64 {
	if acts == nil {
		return 0
	}
	h := 0.0
	if key.Row > 0 {
		h += acts[RowKey{key.Rank, key.Bank, key.Row - 1}]
	}
	if int(key.Row) < d.geom.Rows-1 {
		h += acts[RowKey{key.Rank, key.Bank, key.Row + 1}]
	}
	return h
}

func (d *Device) weakCellFails(w *WeakCell, key RowKey, envFactor,
	hammer float64, p RunParams) bool {
	phys := d.cfg.Physics

	stored, ok := d.storedBit(key, w.WordCol, w.Bit)
	if !ok {
		return false
	}
	pos := d.physBit(key, w.WordCol, w.Bit)
	charged := stored == (d.CellTypeAt(key, pos) == TrueCell)

	tau := w.Tau0 * envFactor
	if w.VRT && p.RNG.Bool(0.5) {
		tau *= w.VRTMult
	}
	lat, vert := d.neighbourCoupling(key, pos)
	tau /= 1 + phys.CouplingAlpha*float64(lat) +
		phys.VCouplingDelta*float64(vert)
	tau /= 1 + phys.HammerBeta*hammer

	if charged {
		return tau < p.TREFP
	}
	return tau*phys.GainFactor < p.TREFP
}

// clusterFails evaluates a multi-bit defect cluster and appends any failing
// bits to flips. All cluster cells are anti-cells sharing one retention
// time. Two couplings lower the shared retention: the intra-cluster
// coupling (per charged sibling) and the external coupling from charged
// lateral neighbours of the cluster cells. Reaching the failure point below
// the standalone onset temperature (~66 °C at the relaxed refresh period)
// requires both the whole cluster charged (its data bits all '0') and the
// neighbouring bits driven to their charged values — a combination the
// paper's GA discovers at 62 °C but no simple micro-benchmark fill produces.
func (d *Device) clusterFails(c *Cluster, key RowKey, envFactor,
	hammer float64, p RunParams, flips map[flipKey][]int) {
	phys := d.cfg.Physics
	img := d.rows[key]
	data := img[c.WordCol]

	chargedN := 0
	for _, b := range c.Bits {
		if data&(1<<uint(b)) == 0 { // anti-cell storing '0' is charged
			chargedN++
		}
	}
	if chargedN == 0 {
		return
	}
	// External coupling comes from the cells flanking the cluster (word
	// bits 16, 19, 20, 23). Each flanking cell is charged when the word
	// holds the cluster's own signature value at its position.
	ext := 0
	for i, nb := range clusterNeighbourBits {
		bit := data&(1<<uint(nb)) != 0
		if bit == c.Neighbours[i] {
			ext++
		}
	}
	jitter := math.Exp(p.RNG.Norm(0, phys.ClusterJitter))
	tau := c.Tau0 * envFactor * jitter
	tau /= 1 + phys.ClusterAlpha*float64(chargedN-1) +
		phys.ClusterExtAlpha*float64(ext)
	tau /= 1 + phys.ClusterHammerB*hammer
	partialBand := phys.ClusterPartialBand
	if partialBand < 1 {
		partialBand = 1
	}
	if tau >= p.TREFP*partialBand {
		return
	}
	fk := flipKey{key, c.WordCol}
	if tau >= p.TREFP {
		// Partial failure: only the weakest member leaks — one CE. This is
		// the stepping stone the UE search climbs.
		for _, b := range c.Bits {
			if data&(1<<uint(b)) == 0 {
				flips[fk] = append(flips[fk], b)
				return
			}
		}
		return
	}
	for _, b := range c.Bits {
		if data&(1<<uint(b)) == 0 {
			flips[fk] = append(flips[fk], b)
		}
	}
}

// clusterNeighbourBits are the word bits flanking the cluster positions
// {17,18} and {21,22}.
var clusterNeighbourBits = []int{16, 19, 20, 23}

// storedBit returns the value of stored bit `bit` (0..71) of word col in
// row key, and whether the row is written. Bits 64..71 are the ECC check
// bits, recomputed from the data as the controller would store them.
func (d *Device) storedBit(key RowKey, col, bit int) (bool, bool) {
	img, ok := d.rows[key]
	if !ok {
		return false, false
	}
	if bit < 64 {
		return img[col]&(1<<uint(bit)) != 0, true
	}
	check := ecc.Checksum(img[col])
	return check&(1<<uint(bit-64)) != 0, true
}

// chargedAtPhys reports the charge state of the cell at physical bit
// position pos of row key. The second result is false when the state is
// unknown: out-of-range positions and unwritten rows, which contribute to
// no coupling at all.
func (d *Device) chargedAtPhys(key RowKey, pos int) (charged, known bool) {
	if pos < 0 || pos >= d.geom.WordsPerRow()*bitsPerWord {
		return false, false
	}
	physCol := pos / bitsPerWord
	q := pos % bitsPerWord
	logCol := d.physWordCol(key.Bank, physCol) // remap is an involution
	logBit := q
	if q < 64 {
		logBit = q ^ d.ScrambleMask(key)
	}
	v, ok := d.storedBit(key, logCol, logBit)
	if !ok {
		return false, false
	}
	return v == (d.CellTypeAt(key, pos) == TrueCell), true
}

// neighbourCoupling returns the two data-dependent coupling terms of a cell
// at position pos of row key: the number of *charged* lateral neighbours
// (same row, positions pos±1) and the number of *discharged* vertical
// neighbours (same position, physically adjacent rows). Cells in unwritten
// rows contribute to neither.
func (d *Device) neighbourCoupling(key RowKey, pos int) (lateral, vertical int) {
	if c, ok := d.chargedAtPhys(key, pos-1); ok && c {
		lateral++
	}
	if c, ok := d.chargedAtPhys(key, pos+1); ok && c {
		lateral++
	}
	if key.Row > 0 {
		if c, ok := d.chargedAtPhys(RowKey{key.Rank, key.Bank, key.Row - 1},
			pos); ok && !c {
			vertical++
		}
	}
	if int(key.Row) < d.geom.Rows-1 {
		if c, ok := d.chargedAtPhys(RowKey{key.Rank, key.Bank, key.Row + 1},
			pos); ok && !c {
			vertical++
		}
	}
	return lateral, vertical
}

// AverageRuns executes n runs with fresh RNG splits and returns the mean CE
// count, the mean SDC count and the fraction of runs that hit a UE. This is
// the paper's ten-run averaging protocol that smooths VRT noise.
func (d *Device) AverageRuns(p RunParams, n int, rng *xrand.Rand) (meanCE,
	meanSDC, ueFrac float64, err error) {
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("dram: AverageRuns n = %d", n)
	}
	var ceSum, sdcSum, ues int
	for i := 0; i < n; i++ {
		p.RNG = rng.Split()
		if p.Version.Normalize() == DeterminismV2 {
			// The batch never reads the error log; the v2 counts path skips
			// building it and reuses the conditions cache across the runs.
			ce, sdc, ue, rerr := d.runV2Counts(p)
			if rerr != nil {
				return 0, 0, 0, rerr
			}
			ceSum += ce
			sdcSum += sdc
			if ue > 0 {
				ues++
			}
			continue
		}
		res, rerr := d.Run(p)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		ceSum += res.CE
		sdcSum += res.SDC
		if res.HasUE() {
			ues++
		}
	}
	return float64(ceSum) / float64(n), float64(sdcSum) / float64(n),
		float64(ues) / float64(n), nil
}
