package experiments

import (
	"dstress/internal/bitvec"
	"dstress/internal/core"
	"dstress/internal/ga"
)

// idealBlockGenome builds the mechanistically ideal block chromosome: every
// victim row charged with the worst word, every neighbour row discharged —
// the pattern the paper's 24-KByte search converges toward.
func (e *Engine) idealBlockGenome(spec *core.BlockDataSpec) *ga.BitGenome {
	wordsPerRow := e.F.Srv.MCU(e.F.MCU).Device().Geometry().WordsPerRow()
	rowWords := make([]uint64, 0, spec.BanksWide*spec.RowsDeep*wordsPerRow)
	for bank := 0; bank < spec.BanksWide; bank++ {
		for depth := 0; depth < spec.RowsDeep; depth++ {
			// The aggressor rows hold the exact complement of the victim
			// word: whatever the victim charges, the neighbours discharge.
			word := ^e.WorstWord
			if depth == spec.VictimRow {
				word = e.WorstWord
			}
			for w := 0; w < wordsPerRow; w++ {
				rowWords = append(rowWords, word)
			}
		}
	}
	return ga.NewBitGenome(bitvec.FromWords(len(rowWords)*64, rowWords))
}

// runBlockExperiment executes one block-pattern search plus the ideal-block
// reference measurement.
func (e *Engine) runBlockExperiment(r *Report, spec *core.BlockDataSpec,
	gens int) (*core.SearchResult, error) {
	res, err := e.F.RunSearch(core.SearchConfig{
		Spec:      spec,
		Criterion: core.MaxCE,
		Point:     core.Relaxed(60),
		GA:        e.gaParams(gens),
	})
	if err != nil {
		return nil, err
	}
	uniform, err := e.F.MeasureWord(e.WorstWord)
	if err != nil {
		return nil, err
	}
	// The ideal block: what the converged search looks like at full budget.
	if err := spec.Deploy(e.F, e.idealBlockGenome(spec)); err != nil {
		return nil, err
	}
	ideal, err := e.F.Measure()
	if err != nil {
		return nil, err
	}
	r.Metrics["uniform_worst_ce"] = uniform.MeanCE
	r.Metrics["ga_best_ce"] = res.BestFitness
	r.Metrics["ideal_block_ce"] = ideal.MeanCE
	r.Metrics["ga_gain_over_uniform"] = res.BestFitness/uniform.MeanCE - 1
	r.Metrics["ideal_gain_over_uniform"] = ideal.MeanCE/uniform.MeanCE - 1
	r.Metrics["generations"] = float64(res.Generations)
	r.Metrics["final_similarity"] = res.FinalSimilarity
	r.Metrics["converged"] = boolMetric(res.Converged)
	r.rowf("uniform worst-64-bit fill: %.1f CEs", uniform.MeanCE)
	r.rowf("GA block pattern:          %.1f CEs (%+.0f%%) after %d generations (SMF %.2f)",
		res.BestFitness, (res.BestFitness/uniform.MeanCE-1)*100,
		res.Generations, res.FinalSimilarity)
	r.rowf("ideal block pattern:       %.1f CEs (%+.0f%%)",
		ideal.MeanCE, (ideal.MeanCE/uniform.MeanCE-1)*100)
	return res, nil
}

// Fig09Worst24KB regenerates Fig 9: the 24-KByte data-pattern search.
func (e *Engine) Fig09Worst24KB() (*Report, error) {
	r := newReport("fig9", "worst-case 24-KByte data patterns (60°C)")
	spec := core.NewData24KSpec()
	res, err := e.runBlockExperiment(r, spec, e.Cfg.BlockGens)
	if err != nil {
		return nil, err
	}
	e.data24Best = res.Best
	e.Best24KCE = r.Metric("ideal_block_ce")
	r.notef("paper: the 24-KByte pattern manifests ~16%% more CEs than the worst 64-bit pattern and converges (SMF 0.89)")
	return e.add(r), nil
}

// Fig10Worst512KB regenerates Fig 10: the 512-KByte search brings no gain
// over the 24-KByte pattern — interference does not cross banks, confirming
// the address-mapping function.
func (e *Engine) Fig10Worst512KB() (*Report, error) {
	r := newReport("fig10", "worst-case 512-KByte data patterns (60°C)")
	spec := core.NewData512KSpec()
	if _, err := e.runBlockExperiment(r, spec, e.Cfg.BlockGens); err != nil {
		return nil, err
	}
	if e.Best24KCE > 0 {
		gain := r.Metric("ideal_block_ce")/e.Best24KCE - 1
		r.Metrics["gain_over_24k"] = gain
		r.rowf("vs ideal 24-KByte pattern: %+.1f%%", gain*100)
	}
	r.notef("paper: no gain over the 24-KByte pattern — no cell-to-cell interference across banks")
	return e.add(r), nil
}
