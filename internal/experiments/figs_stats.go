package experiments

import (
	"dstress/internal/bitvec"
	"dstress/internal/core"
	"dstress/internal/ga"
	"dstress/internal/power"
	"dstress/internal/workload"
)

// Fig13aDataPatternPDF regenerates Fig 13a: the distribution of CE counts
// over randomized data patterns, its normality test, and the probability
// that DStress found the worst case — for both the 64-bit and the
// 24-KByte searches.
func (e *Engine) Fig13aDataPatternPDF() (*Report, error) {
	r := newReport("fig13a", "random data-pattern CE distribution (60°C)")

	// Reference fitness of the discovered patterns at 60°C.
	if err := e.F.Apply(core.Relaxed(60)); err != nil {
		return nil, err
	}
	worst64, err := e.F.MeasureWord(e.WorstWord)
	if err != nil {
		return nil, err
	}
	study64, err := e.F.RandomPatternStudy(core.Data64Spec{}, core.MaxCE,
		core.Relaxed(60), e.Cfg.RandomSamples, worst64.MeanCE)
	if err != nil {
		return nil, err
	}
	centers, counts, err := study64.PDF(10)
	if err != nil {
		return nil, err
	}
	for i := range centers {
		r.rowf("64-bit  bin %5.1f CEs: %s", centers[i], bar(counts[i]))
	}
	r.Metrics["d64_mean"] = study64.Summary.Mean
	r.Metrics["d64_sigma"] = study64.Summary.StdDev
	r.Metrics["d64_normal"] = boolMetric(study64.Normality.IsNormal(0.05))
	r.Metrics["d64_p_found_worst"] = study64.PFoundWorst
	r.rowf("64-bit: normal (p=%.3f); GA best %.1f; P(found worst) = %.4f",
		study64.Normality.PValue, worst64.MeanCE, study64.PFoundWorst)

	// 24-KByte: vastly larger space, much lower random mean relative to
	// the discovered pattern — the paper's 1-4e-7 result.
	spec24 := core.NewData24KSpec()
	ideal24 := e.Best24KCE
	if ideal24 == 0 {
		if err := e.F.Apply(core.Relaxed(60)); err != nil {
			return nil, err
		}
		if err := spec24.Prepare(e.F); err != nil {
			return nil, err
		}
		if err := spec24.Deploy(e.F, e.idealBlockGenome(spec24)); err != nil {
			return nil, err
		}
		m, err := e.F.Measure()
		if err != nil {
			return nil, err
		}
		ideal24 = m.MeanCE
	}
	study24, err := e.F.RandomPatternStudy(spec24, core.MaxCE,
		core.Relaxed(60), e.Cfg.RandomSamples, ideal24)
	if err != nil {
		return nil, err
	}
	r.Metrics["d24_mean"] = study24.Summary.Mean
	r.Metrics["d24_sigma"] = study24.Summary.StdDev
	r.Metrics["d24_p_found_worst"] = study24.PFoundWorst
	r.Metrics["d24_p_stronger_exists"] = study24.PStrongerExists
	r.rowf("24-KByte: random mean %.1f σ %.1f; discovered %.1f; P(stronger exists) = %.2e",
		study24.Summary.Mean, study24.Summary.StdDev, ideal24,
		study24.PStrongerExists)
	r.notef("paper: P(found worst) = 0.97 (64-bit) and 1-4e-7 (24-KByte); distribution passes D'Agostino-Pearson")
	return e.add(r), nil
}

// Fig13bAccessPatternPDF regenerates Fig 13b: the random access-pattern
// distribution and the 0.95 discovery probability.
func (e *Engine) Fig13bAccessPatternPDF() (*Report, error) {
	r := newReport("fig13b", "random access-pattern CE distribution (60°C)")
	spec := core.NewAccessRowsSpec(e.WorstWord)
	gaBest := e.AccessT1CE
	if gaBest == 0 {
		// Standalone invocation: measure the all-rows access virus.
		if err := e.F.Apply(core.Relaxed(60)); err != nil {
			return nil, err
		}
		if err := spec.Prepare(e.F); err != nil {
			return nil, err
		}
		all := bitvec.New(64)
		for i := 0; i < 64; i++ {
			all.Set(i, true)
		}
		if err := spec.Deploy(e.F, ga.NewBitGenome(all)); err != nil {
			return nil, err
		}
		m, err := e.F.Measure()
		if err != nil {
			return nil, err
		}
		gaBest = m.MeanCE
	}
	study, err := e.F.RandomPatternStudy(spec, core.MaxCE, core.Relaxed(60),
		e.Cfg.RandomSamples, gaBest)
	if err != nil {
		return nil, err
	}
	centers, counts, err := study.PDF(10)
	if err != nil {
		return nil, err
	}
	for i := range centers {
		r.rowf("access  bin %5.1f CEs: %s", centers[i], bar(counts[i]))
	}
	r.Metrics["mean"] = study.Summary.Mean
	r.Metrics["sigma"] = study.Summary.StdDev
	r.Metrics["p_found_worst"] = study.PFoundWorst
	r.rowf("access: random mean %.1f σ %.1f; GA best %.1f; P(found worst) = %.3f",
		study.Summary.Mean, study.Summary.StdDev, gaBest, study.PFoundWorst)
	r.notef("paper: P(found worst access pattern) = 0.95 — lower confidence than the data-pattern searches")
	return e.add(r), nil
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// Fig14MarginalTREFP regenerates Fig 14: the marginal refresh periods
// discovered by the three virus classes at 50/60/70 °C under relaxed VDD,
// for both margin criteria, plus the power savings of the use case.
func (e *Engine) Fig14MarginalTREFP() (*Report, error) {
	r := newReport("fig14", "marginal TREFP under relaxed VDD and power savings")
	ctl := e.F.Srv.MCU(e.F.MCU)
	dev := ctl.Device()

	deployData64 := func() error {
		ctl.ResetStats()
		dev.Reset()
		dev.FillAllUniform(e.WorstWord)
		return nil
	}
	spec24 := core.NewData24KSpec()
	deployData24 := func() error {
		ctl.ResetStats()
		if err := spec24.Prepare(e.F); err != nil {
			return err
		}
		return spec24.Deploy(e.F, e.idealBlockGenome(spec24))
	}
	rows := core.NewAccessRowsSpec(e.WorstWord)
	deployAccess := func() error {
		if err := rows.Prepare(e.F); err != nil {
			return err
		}
		g := e.accessBest
		if g == nil {
			all := bitvec.New(64)
			for i := 0; i < 64; i++ {
				all.Set(i, true)
			}
			g = ga.NewBitGenome(all)
		}
		return rows.Deploy(e.F, g)
	}

	viruses := []struct {
		name   string
		deploy func() error
	}{
		{"64-bit data", deployData64},
		{"24-KByte data", deployData24},
		{"access", deployAccess},
	}
	temps := []float64{50, 60, 70}
	margins := map[string]map[float64]float64{}
	for _, v := range viruses {
		margins[v.name] = map[float64]float64{}
		for _, temp := range temps {
			m, err := e.F.MarginalTREFP(v.deploy, core.RelaxedVDD, temp,
				core.NoErrors, e.Cfg.MarginGrid)
			if err != nil {
				return nil, err
			}
			margins[v.name][temp] = m
			r.rowf("%-14s no-errors margin at %2.0f°C: %6.3f s", v.name, temp, m)
		}
	}
	// UE-only margins (the paper's "Single-bit errors" series).
	for _, temp := range temps {
		m, err := e.F.MarginalTREFP(deployData64, core.RelaxedVDD, temp,
			core.NoUEs, e.Cfg.MarginGrid)
		if err != nil {
			return nil, err
		}
		r.rowf("%-14s no-UE margin at %2.0f°C:     %6.3f s", "64-bit data", temp, m)
		r.Metrics[metricName("noue_margin", temp)] = m
	}
	for name, byTemp := range margins {
		for temp, m := range byTemp {
			r.Metrics[metricName("margin_"+slug(name), temp)] = m
		}
	}

	// Validation: real workloads run error-free at the access virus's
	// margin (the paper ran Rodinia/Parsec/Ligra for three weeks).
	val, err := e.F.ValidateMargin(workload.All(), margins["access"][50],
		core.RelaxedVDD, 50, 40000, e.Cfg.Runs)
	if err != nil {
		return nil, err
	}
	r.Metrics["validation_clean"] = boolMetric(val.Clean)
	r.rowf("workload validation at %.3fs/50°C: %v (clean=%v)",
		val.TREFP, val.ByWorkload, val.Clean)

	// Power use case at the access virus's 50°C margin (the most
	// conservative usable setting).
	sav, err := core.SavingsAt(power.Default(), margins["access"][50],
		core.RelaxedVDD)
	if err != nil {
		return nil, err
	}
	r.Metrics["dram_savings"] = sav.DIMMSavings
	r.Metrics["system_savings"] = sav.SystemSavings
	r.rowf("power at marginal TREFP %.3fs/%.3fV: DIMM %.2fW -> %.2fW (%.1f%%); system %.1f%%",
		sav.MarginalTREFP, core.RelaxedVDD, sav.DIMMNominalW,
		sav.DIMMMarginalW, sav.DIMMSavings*100, sav.SystemSavings*100)
	r.notef("paper: access virus finds the most pessimistic margins; UE-only margins are higher; 17.7%% DRAM / 8.6%% system savings")
	return e.add(r), nil
}

func metricName(prefix string, temp float64) string {
	return prefix + "_" + itoa(int(temp)) + "C"
}

func slug(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == ' ', c == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
