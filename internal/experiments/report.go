// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) and use-case (Section VI) chapters on the
// simulated platform. Each experiment produces a Report — the rows/series
// the paper plots plus the headline metrics — and the Engine threads the
// discovered viruses from one experiment into the next, exactly as the
// 7-month campaign did (the worst-case 64-bit pattern feeds the access
// templates; the discovered viruses feed the margin study).
//
// The same code backs the root-level benchmark harness (one benchmark per
// figure) and the cmd/experiments binary that writes EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is the regenerated content of one figure or table.
type Report struct {
	ID    string // e.g. "fig8a"
	Title string
	// Rows are the formatted result lines (the figure's series).
	Rows []string
	// Metrics are the headline numbers, keyed by stable names, used by the
	// benchmark harness and EXPERIMENTS.md.
	Metrics map[string]float64
	// Notes records qualitative observations (convergence, orderings).
	Notes []string
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

func (r *Report) rowf(format string, args ...interface{}) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

func (r *Report) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Metric returns a metric value (0 if absent).
func (r *Report) Metric(name string) float64 { return r.Metrics[name] }

// String renders the report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %s\n", row)
	}
	if len(r.Metrics) > 0 {
		names := make([]string, 0, len(r.Metrics))
		for name := range r.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-32s %g\n", name+":", r.Metrics[name])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
