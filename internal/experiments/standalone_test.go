package experiments

import "testing"

// The standalone tests run individual experiments on fresh engines,
// exercising the fallback paths that RunAll's result-threading normally
// skips (canonical worst/best words, all-rows access genomes).

func quickEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := QuickConfig()
	cfg.RandomSamples = 40
	cfg.SearchGens = 25
	cfg.BlockGens = 8
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStandaloneFig13a(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e := quickEngine(t)
	r, err := e.Fig13aDataPatternPDF() // no prior fig8a/fig9: fallbacks used
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric("d64_p_found_worst") < 0.5 {
		t.Errorf("standalone fig13a: P(found worst) %.3f",
			r.Metric("d64_p_found_worst"))
	}
	if r.Metric("d24_p_stronger_exists") > 0.05 {
		t.Errorf("standalone fig13a: 24K tail %.3g",
			r.Metric("d24_p_stronger_exists"))
	}
}

func TestStandaloneFig13b(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e := quickEngine(t)
	r, err := e.Fig13bAccessPatternPDF() // fallback all-rows genome
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric("p_found_worst") < 0.3 {
		t.Errorf("standalone fig13b: P(found worst) %.3f",
			r.Metric("p_found_worst"))
	}
}

func TestStandaloneFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e := quickEngine(t)
	r, err := e.Fig14MarginalTREFP() // fallback access genome + canonical words
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric("margin_64_bit_data_50C") < r.Metric("margin_64_bit_data_70C") {
		t.Error("standalone fig14: margins not decreasing with temperature")
	}
	if r.Metric("validation_clean") != 1 {
		t.Error("standalone fig14: validation not clean")
	}
}

func TestStandaloneFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e := quickEngine(t)
	r, err := e.Fig10Worst512KB() // no prior fig9: the 24K comparison is absent
	if err != nil {
		t.Fatal(err)
	}
	if _, has := r.Metrics["gain_over_24k"]; has {
		t.Error("standalone fig10 computed a 24K comparison without fig9")
	}
	if r.Metric("ideal_gain_over_uniform") <= 0 {
		t.Error("standalone fig10: ideal block shows no gain")
	}
}

func TestStandaloneExtRowhammer(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e := quickEngine(t)
	r, err := e.ExtRowhammer() // fallback all-rows cached genome
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric("clflush_gain") <= 0 {
		t.Errorf("standalone rowhammer gain %.3f", r.Metric("clflush_gain"))
	}
}
