package experiments

import (
	"dstress/internal/bitvec"
	"dstress/internal/core"
	"dstress/internal/ga"
	"dstress/internal/server"
	"dstress/internal/similarity"
)

// Fig01bWorkloadVariation regenerates Fig 1b: single-bit error counts per
// DIMM/rank for kmeans and memcached under relaxed parameters at 50 °C.
func (e *Engine) Fig01bWorkloadVariation() (*Report, error) {
	r := newReport("fig1b", "workload- and DIMM-dependent error behaviour")
	regionBytes := e.F.Srv.MCU(0).Device().Geometry().TotalBytes() / 2
	cells, err := e.F.WorkloadStudy([]string{"kmeans", "memcached", "stencil"},
		regionBytes, 120000)
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		r.rowf("%-10s DIMM%d/rank%d: %8.2f CEs", c.Workload, c.MCU, c.Rank,
			c.MeanCE)
	}
	aw, ad := core.VariationFactors(cells)
	r.Metrics["variation_across_workloads"] = aw
	r.Metrics["variation_across_dimms"] = ad
	r.notef("paper observes ~1000x across workloads and ~633x across DIMMs")
	return e.add(r), nil
}

// GAParameterTuning regenerates the Section-V GA parameter selection: the
// bit-counting fitness simulation across a parameter grid.
func (e *Engine) GAParameterTuning() (*Report, error) {
	r := newReport("ga-tuning", "GA parameter selection on the bit-counting fitness")
	grid, best, err := core.TuneGA(
		[]int{20, 40, 60},
		[]float64{0.5, 0.7, 0.9},
		[]float64{0.1, 0.3, 0.5},
		3, 300, e.F.RNG.Split())
	if err != nil {
		return nil, err
	}
	for _, pt := range grid {
		r.rowf("pop %2d  crossover %.1f  mutation %.1f -> %6.1f generations (%3.0f%% success)",
			pt.Population, pt.CrossoverProb, pt.MutationProb,
			pt.MeanGenerations, pt.SuccessRate*100)
	}
	r.Metrics["best_population"] = float64(best.Population)
	r.Metrics["best_crossover"] = best.CrossoverProb
	r.Metrics["best_mutation"] = best.MutationProb
	r.Metrics["best_generations"] = best.MeanGenerations
	r.notef("paper selects pop 40, crossover 0.9, mutation 0.5 at ~80 generations")
	return e.add(r), nil
}

// searchData64 runs a 64-bit data-pattern search and formats the final
// population the way the paper's figures show the 40 discovered patterns.
func (e *Engine) searchData64(r *Report, criterion core.Criterion,
	tempC float64) (*core.SearchResult, error) {
	res, err := e.F.RunSearch(core.SearchConfig{
		Spec:      core.Data64Spec{},
		Criterion: criterion,
		Point:     core.Relaxed(tempC),
		GA:        e.gaParams(e.Cfg.SearchGens),
	})
	if err != nil {
		return nil, err
	}
	for i, s := range res.PopulationBits() {
		if i >= 5 {
			r.rowf("... (%d more patterns)", len(res.Population)-5)
			break
		}
		r.rowf("pattern %2d: %s  fitness %.1f", i+1, s, res.Fitnesses[i])
	}
	r.Metrics["generations"] = float64(res.Generations)
	r.Metrics["final_similarity"] = res.FinalSimilarity
	r.Metrics["converged"] = boolMetric(res.Converged)
	return res, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// countSubpattern counts how many of the 16 aligned nibble positions of the
// word carry the '1100' sub-pattern (0x3 per nibble).
func countSubpattern1100(word uint64) int {
	n := 0
	for i := 0; i < 16; i++ {
		if (word>>(4*i))&0xF == 0x3 {
			n++
		}
	}
	return n
}

// Fig08aWorst64Bit regenerates Fig 8a: the worst-case 64-bit data patterns
// at 55 °C and the repeating-'1100' observation.
func (e *Engine) Fig08aWorst64Bit() (*Report, error) {
	r := newReport("fig8a", "worst-case 64-bit data patterns (55°C)")
	res, err := e.searchData64(r, core.MaxCE, 55)
	if err != nil {
		return nil, err
	}
	best := res.Best.(*ga.BitGenome).Bits
	e.WorstWord = best.Uint64()
	e.Fig8aBest = res.BestFitness
	e.fig8aPop = res.Population
	sim, err := similarity.SokalMichener(best,
		bitvec.FromUint64(0x3333333333333333))
	if err != nil {
		return nil, err
	}
	r.Metrics["best_ce"] = res.BestFitness
	r.Metrics["similarity_to_1100"] = sim
	r.Metrics["nibbles_1100"] = float64(countSubpattern1100(best.Uint64()))
	r.rowf("best word: %016x (%d/16 aligned '1100' nibbles)",
		best.Uint64(), countSubpattern1100(best.Uint64()))
	r.notef("paper: repeating '1100' maximizes CEs; search converges (SMF >= 0.85) in ~80 generations")
	return e.add(r), nil
}

// Fig08bTemperatureInvariance regenerates Fig 8b: the worst-case pattern
// rediscovered at 60 °C matches the 55 °C discovery.
func (e *Engine) Fig08bTemperatureInvariance() (*Report, error) {
	r := newReport("fig8b", "worst-case 64-bit data patterns (60°C)")
	res, err := e.searchData64(r, core.MaxCE, 60)
	if err != nil {
		return nil, err
	}
	best60 := res.Best.(*ga.BitGenome).Bits
	sim, err := similarity.SokalMichener(best60, bitvec.FromUint64(e.WorstWord))
	if err != nil {
		return nil, err
	}
	// Cross-set similarity between the two final populations (paper: 0.90).
	cross := 0.0
	consensusSim := 0.0
	if e.fig8aPop != nil {
		n := 0
		for _, a := range e.fig8aPop {
			for _, b := range res.Population {
				cross += a.SimilarityTo(b)
				n++
			}
		}
		cross /= float64(n)
		// Population consensus comparison: majority-voted patterns of the
		// two searches, with the unconstrained drifting bits voted out.
		c55 := (&core.SearchResult{Result: gaResultOf(e.fig8aPop)}).ConsensusBits()
		c60 := res.ConsensusBits()
		if c55 != nil && c60 != nil {
			if s, err := similarity.SokalMichener(c55, c60); err == nil {
				consensusSim = s
			}
		}
	}
	r.Metrics["similarity_best_55_vs_60"] = sim
	r.Metrics["cross_population_similarity"] = cross
	r.Metrics["consensus_similarity"] = consensusSim
	r.rowf("best word at 60°C: %016x (similarity to 55°C best: %.2f; consensus-to-consensus: %.2f)",
		best60.Uint64(), sim, consensusSim)
	r.notef("paper: the worst-case data pattern does not change with temperature (cross-set SMF 0.90)")
	return e.add(r), nil
}

// Fig08cBest64Bit regenerates Fig 8c: the best-case (CE-minimizing)
// patterns and the ~8x worst/best gap.
func (e *Engine) Fig08cBest64Bit() (*Report, error) {
	r := newReport("fig8c", "best-case 64-bit data patterns (55°C)")
	res, err := e.searchData64(r, core.MinCE, 55)
	if err != nil {
		return nil, err
	}
	best := res.Best.(*ga.BitGenome).Bits
	e.BestWord = best.Uint64()
	bestCE := -res.BestFitness
	worst, err := e.F.MeasureWord(e.WorstWord)
	if err != nil {
		return nil, err
	}
	ratio := 0.0
	if bestCE > 0 {
		ratio = worst.MeanCE / bestCE
	} else {
		ratio = worst.MeanCE / 0.05 // detection floor
	}
	simWB, err := similarity.SokalMichener(best, bitvec.FromUint64(e.WorstWord))
	if err != nil {
		return nil, err
	}
	r.Metrics["best_case_ce"] = bestCE
	r.Metrics["worst_case_ce"] = worst.MeanCE
	r.Metrics["worst_over_best"] = ratio
	r.Metrics["similarity_worst_vs_best"] = simWB
	r.rowf("best-case word: %016x (%.2f CEs) vs worst %016x (%.1f CEs): %.1fx",
		best.Uint64(), bestCE, e.WorstWord, worst.MeanCE, ratio)
	r.notef("paper: worst/best gap ~8x; worst-vs-best pattern similarity ~0.62")
	return e.add(r), nil
}

// Fig08dUEPatterns regenerates Fig 8d: the UE-triggering patterns at 62 °C.
func (e *Engine) Fig08dUEPatterns() (*Report, error) {
	r := newReport("fig8d", "64-bit data patterns triggering UEs (62°C)")
	res, err := e.F.RunSearch(core.SearchConfig{
		Spec:      core.Data64Spec{},
		Criterion: core.MaxUE,
		Point:     core.Relaxed(62),
		GA:        e.gaParams(e.Cfg.SearchGens),
	})
	if err != nil {
		return nil, err
	}
	ueFrac := core.UEFracOf(res.BestFitness)
	best := res.Best.(*ga.BitGenome).Bits.Uint64()
	// The paper's observation: bits 17, 18, 21 and 22 are '0' in every
	// discovered pattern. Count how many of the final population's
	// UE-firing patterns satisfy it.
	zeroBits := 0
	firing := 0
	for i, g := range res.Population {
		if core.UEFracOf(res.Fitnesses[i]) < 0.5 {
			continue
		}
		firing++
		w := g.(*ga.BitGenome).Bits.Uint64()
		if w&(1<<17|1<<18|1<<21|1<<22) == 0 {
			zeroBits++
		}
	}
	frac := 0.0
	if firing > 0 {
		frac = float64(zeroBits) / float64(firing)
	}
	r.Metrics["best_ue_frac"] = ueFrac
	r.Metrics["generations"] = float64(res.Generations)
	r.Metrics["final_similarity"] = res.FinalSimilarity
	r.Metrics["converged"] = boolMetric(res.Converged)
	r.Metrics["firing_patterns"] = float64(firing)
	r.Metrics["bits17_18_21_22_zero_frac"] = frac
	r.rowf("best UE pattern: %016x fires in %.0f%% of runs", best, ueFrac*100)
	r.rowf("%d/%d firing patterns have bits 17,18,21,22 = 0", zeroBits, firing)
	r.notef("paper: UEs from 62°C only; search does not converge (SMF 0.58); bits 17,18,21,22 always '0'")
	return e.add(r), nil
}

// Fig08eMicrobenchComparison regenerates Fig 8e: the discovered worst/best
// patterns versus the traditional micro-benchmarks across DIMM2 and DIMM3.
func (e *Engine) Fig08eMicrobenchComparison() (*Report, error) {
	r := newReport("fig8e", "viruses vs traditional micro-benchmarks (60°C)")
	if err := e.F.Apply(core.Relaxed(60)); err != nil {
		return nil, err
	}
	type entry struct {
		name string
		ce   map[int]float64 // per MCU
	}
	var entries []entry
	origMCU := e.F.MCU
	defer func() { e.F.MCU = origMCU }()

	var bestBaselineCE float64
	var bestBaselineName string
	var worstVirusCE, bestVirusCE float64
	for _, mcu := range []int{server.MCU2, server.MCU3} {
		e.F.MCU = mcu
		suite, err := e.F.RunBaselineSuite(8)
		if err != nil {
			return nil, err
		}
		for _, b := range suite {
			found := false
			for i := range entries {
				if entries[i].name == b.Name {
					entries[i].ce[mcu] = b.WorstPassCE
					found = true
				}
			}
			if !found {
				entries = append(entries, entry{name: b.Name,
					ce: map[int]float64{mcu: b.WorstPassCE}})
			}
			if mcu == server.MCU2 && b.WorstPassCE > bestBaselineCE {
				bestBaselineCE, bestBaselineName = b.WorstPassCE, b.Name
			}
		}
		worst, err := e.F.MeasureWord(e.WorstWord)
		if err != nil {
			return nil, err
		}
		bestV, err := e.F.MeasureWord(e.BestWord)
		if err != nil {
			return nil, err
		}
		if mcu == server.MCU2 {
			worstVirusCE, bestVirusCE = worst.MeanCE, bestV.MeanCE
			e.Worst64CE = worst.MeanCE
		}
		entries = append(entries,
			entry{name: "worst-virus@" + mcuName(mcu),
				ce: map[int]float64{mcu: worst.MeanCE}},
			entry{name: "best-virus@" + mcuName(mcu),
				ce: map[int]float64{mcu: bestV.MeanCE}})
	}
	for _, en := range entries {
		for mcu, ce := range en.ce {
			r.rowf("%-22s %s: %7.2f CEs", en.name, mcuName(mcu), ce)
		}
	}
	margin := worstVirusCE/bestBaselineCE - 1
	r.Metrics["best_baseline_ce"] = bestBaselineCE
	r.Metrics["worst_virus_ce"] = worstVirusCE
	r.Metrics["best_virus_ce"] = bestVirusCE
	r.Metrics["virus_margin_over_baseline"] = margin
	r.rowf("strongest micro-benchmark: %s (%.1f CEs); worst virus +%.0f%%",
		bestBaselineName, bestBaselineCE, margin*100)
	r.notef("paper: the worst-case virus induces >=45%% more CEs than walking0s, across DIMMs and ranks")
	return e.add(r), nil
}

// gaResultOf wraps a stored population for consensus computation.
func gaResultOf(pop []ga.Genome) ga.Result {
	return ga.Result{Population: pop}
}

func mcuName(mcu int) string {
	return map[int]string{0: "DIMM0", 1: "DIMM1", 2: "DIMM2", 3: "DIMM3"}[mcu]
}
