package experiments

import (
	"dstress/internal/core"
	"dstress/internal/dram"
	"dstress/internal/ga"
	"dstress/internal/march"
	"dstress/internal/power"
	"dstress/internal/predict"
	"dstress/internal/server"
	"dstress/internal/xrand"
)

// The extension experiments implement the paper's Section VI proposals
// beyond the published evaluation: March-test comparison, rowhammer
// scenarios, retention profiling and predictive maintenance. They are run
// by cmd/experiments with -ext and appended to the campaign reports.

// RunExtensions executes all extension experiments.
func (e *Engine) RunExtensions() error {
	steps := []func() (*Report, error){
		e.ExtMarchComparison,
		e.ExtRowhammer,
		e.ExtRetentionProfiling,
		e.ExtRetentionAwareRefresh,
		e.ExtPredictiveMaintenance,
	}
	for _, step := range steps {
		if _, err := step(); err != nil {
			return err
		}
	}
	return nil
}

// ExtMarchComparison compares industry March tests against the virus scan:
// back-to-back March runs miss retention faults entirely; retention-aware
// runs find fewer error-prone rows than the charge-all virus.
func (e *Engine) ExtMarchComparison() (*Report, error) {
	r := newReport("ext-march", "March tests vs the synthesized virus (60°C)")
	if err := e.F.Apply(core.Relaxed(60)); err != nil {
		return nil, err
	}
	dev := e.F.Srv.MCU(e.F.MCU).Device()
	cond := march.Conditions{TREFP: core.MaxTREFP, TempC: 60,
		VDD: core.RelaxedVDD, RNG: e.F.RNG.Split()}

	plain, err := march.Run(dev, march.MarchCMinus(), cond)
	if err != nil {
		return nil, err
	}
	aware, err := march.Run(dev, march.RetentionAware(march.MarchCMinus()), cond)
	if err != nil {
		return nil, err
	}

	dev.Reset()
	dev.FillAll(dev.ChargeAllWord)
	virusRows := map[dram.RowKey]bool{}
	for i := 0; i < 4; i++ {
		run, err := dev.Run(dram.RunParams{TREFP: core.MaxTREFP, TempC: 60,
			VDD: core.RelaxedVDD, RNG: e.F.RNG.Split()})
		if err != nil {
			return nil, err
		}
		for _, we := range run.Errors {
			virusRows[we.Key] = true
		}
	}
	r.rowf("March C- back-to-back:     %3d failing rows", len(plain.FailingRows))
	r.rowf("March C- retention-aware:  %3d failing rows", len(aware.FailingRows))
	r.rowf("charge-all virus scan:     %3d failing rows", len(virusRows))
	r.Metrics["march_plain_rows"] = float64(len(plain.FailingRows))
	r.Metrics["march_aware_rows"] = float64(len(aware.FailingRows))
	r.Metrics["virus_rows"] = float64(len(virusRows))
	r.notef("the paper's motivation: standard tests under-detect in-operation retention faults")
	return e.add(r), nil
}

// ExtRowhammer compares the cached access virus against the clflush-style
// double-sided hammer — the security scenario the paper proposes exploring.
func (e *Engine) ExtRowhammer() (*Report, error) {
	r := newReport("ext-rowhammer", "clflush rowhammer vs cached access virus (50°C)")
	if err := e.F.Apply(core.Relaxed(50)); err != nil {
		return nil, err
	}
	rows := core.NewAccessRowsSpec(e.WorstWord)
	if err := rows.Prepare(e.F); err != nil {
		return nil, err
	}
	cachedBest := e.accessBest
	if cachedBest == nil {
		// Standalone invocation: hammer every neighbour row.
		pop := rows.NewPopulation(e.F, 1, xrand.New(1))
		g := pop[0].(*ga.BitGenome)
		for i := 0; i < g.Bits.Len(); i++ {
			g.Bits.Set(i, true)
		}
		cachedBest = g
	}
	if err := rows.Deploy(e.F, cachedBest); err != nil {
		return nil, err
	}
	cached, err := e.F.Measure()
	if err != nil {
		return nil, err
	}
	hammer := core.NewRowhammerSpec(e.WorstWord)
	if err := hammer.Prepare(e.F); err != nil {
		return nil, err
	}
	if err := hammer.Deploy(e.F, hammer.DoubleSidedGenome()); err != nil {
		return nil, err
	}
	flushed, err := e.F.Measure()
	if err != nil {
		return nil, err
	}
	r.rowf("cached access virus:        %6.1f CEs", cached.MeanCE)
	r.rowf("double-sided clflush attack: %6.1f CEs", flushed.MeanCE)
	r.Metrics["cached_ce"] = cached.MeanCE
	r.Metrics["clflush_ce"] = flushed.MeanCE
	r.Metrics["clflush_gain"] = flushed.MeanCE/cached.MeanCE - 1
	r.notef("flush-based attacks reach activation rates explicit loads cannot, as the paper notes in §V.4")
	return e.add(r), nil
}

// ExtRetentionProfiling quantifies the coverage gap between MSCAN-based
// retention profiling (prior work) and virus-based profiling.
func (e *Engine) ExtRetentionProfiling() (*Report, error) {
	r := newReport("ext-profiling", "retention profiling: MSCAN vs virus fills (60°C)")
	virus, err := e.F.ProfileRetention([]uint64{e.WorstWord}, 60, 10, 3)
	if err != nil {
		return nil, err
	}
	mscan, err := e.F.ProfileRetention([]uint64{0, ^uint64(0)}, 60, 10, 3)
	if err != nil {
		return nil, err
	}
	frac, missed := core.Coverage(virus, mscan)
	r.rowf("virus profile:  %3d error-prone rows", len(virus.SafeTREFP))
	r.rowf("MSCAN profile:  %3d error-prone rows (covers %.0f%% of the virus rows)",
		len(mscan.SafeTREFP), frac*100)
	r.rowf("rows only the virus exposes: %d", len(missed))
	r.Metrics["virus_rows"] = float64(len(virus.SafeTREFP))
	r.Metrics["mscan_rows"] = float64(len(mscan.SafeTREFP))
	r.Metrics["mscan_coverage"] = frac
	r.notef("retention-aware refresh built on micro-benchmark profiles would under-refresh the missed rows")
	return e.add(r), nil
}

// ExtRetentionAwareRefresh builds RAIDR-style per-row refresh plans from
// the MSCAN and virus profiles and contrasts their safety under the
// worst-case data pattern — the end-to-end consequence of the profiling
// coverage gap.
func (e *Engine) ExtRetentionAwareRefresh() (*Report, error) {
	r := newReport("ext-refresh", "retention-aware refresh plans from the two profiles")
	virus, err := e.F.ProfileRetention([]uint64{e.WorstWord}, 60, 12, 4)
	if err != nil {
		return nil, err
	}
	mscan, err := e.F.ProfileRetention([]uint64{0, ^uint64(0)}, 60, 12, 4)
	if err != nil {
		return nil, err
	}
	geom := e.F.Srv.MCU(e.F.MCU).Device().Geometry()
	totalRows := geom.Ranks * geom.Banks * geom.Rows
	for _, c := range []struct {
		name string
		prof *core.ProfileResult
	}{{"virus", virus}, {"MSCAN", mscan}} {
		plan, err := core.BuildRefreshPlan(c.prof, core.MaxTREFP, 0.3)
		if err != nil {
			return nil, err
		}
		m, err := e.F.EvaluatePlan(plan, e.WorstWord, 60, e.Cfg.Runs)
		if err != nil {
			return nil, err
		}
		save, err := plan.Savings(power.Default(), totalRows)
		if err != nil {
			return nil, err
		}
		r.rowf("%-6s plan: %3d binned rows, refresh savings %.1f%%, worst-pattern errors CE=%.2f UE=%.2f",
			c.name, len(plan.PerRow), save*100, m.MeanCE, m.UEFrac)
		r.Metrics[c.name+"_plan_ce"] = m.MeanCE
		r.Metrics[c.name+"_refresh_savings"] = save
	}
	r.notef("the plan built from the micro-benchmark profile under-refreshes the rows only the virus exposes")
	return e.add(r), nil
}

// ExtPredictiveMaintenance simulates a degrading DIMM across periodic virus
// health scans and reports when the analyzer flags it.
func (e *Engine) ExtPredictiveMaintenance() (*Report, error) {
	r := newReport("ext-maintenance", "fleet health scans over a degrading DIMM")
	analyzer := predict.NewAnalyzer()
	analyzer.FleetZThreshold = 6
	flaggedAt := -1
	const scans = 6
	for scan := 1; scan <= scans; scan++ {
		obs, err := predict.Scan(e.F, e.WorstWord, predict.DefaultScanPoint())
		if err != nil {
			return nil, err
		}
		verdicts, err := analyzer.Record(obs)
		if err != nil {
			return nil, err
		}
		for i, o := range obs {
			status := ""
			if verdicts[i].Flagged {
				status = "  <- " + verdicts[i].Reason
				if o.MCU == server.MCU2 && flaggedAt < 0 {
					flaggedAt = scan
				}
			}
			r.rowf("scan %d DIMM%d: %6.1f CEs%s", scan, o.MCU, o.MeanCE, status)
		}
		if err := e.F.Srv.MCU(server.MCU2).Device().Age(0.88); err != nil {
			return nil, err
		}
	}
	r.Metrics["flagged_at_scan"] = float64(flaggedAt)
	r.notef("the degrading DIMM is flagged under the virus probe while still healthy at nominal parameters")
	return e.add(r), nil
}
