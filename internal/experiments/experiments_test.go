package experiments

import (
	"strings"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*Config){
		func(c *Config) { c.RowsPerBank = 0 },
		func(c *Config) { c.Runs = 0 },
		func(c *Config) { c.SearchGens = 0 },
		func(c *Config) { c.BlockGens = 0 },
		func(c *Config) { c.RandomSamples = 5 },
		func(c *Config) { c.MarginGrid = 1 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	bad := DefaultConfig()
	bad.RowsPerBank = -1
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("NewEngine accepted bad config")
	}
}

func TestReportFormatting(t *testing.T) {
	r := newReport("figX", "test report")
	r.rowf("row %d", 1)
	r.notef("note %s", "a")
	r.Metrics["m"] = 3.5
	s := r.String()
	for _, want := range []string{"figX", "test report", "row 1", "note: note a", "m:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	if r.Metric("m") != 3.5 || r.Metric("missing") != 0 {
		t.Fatal("Metric accessor wrong")
	}
}

// TestFullCampaign runs every experiment end-to-end at the quick scale and
// checks the paper-shape assertions that hold even at reduced budgets.
func TestFullCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is long; run without -short")
	}
	e, err := NewEngine(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	reports := e.Reports()
	if len(reports) != 14 {
		t.Fatalf("campaign produced %d reports, want 14", len(reports))
	}
	byID := map[string]*Report{}
	for _, r := range reports {
		byID[r.ID] = r
		t.Logf("\n%s", r)
		if len(r.Rows) == 0 {
			t.Errorf("%s: no rows", r.ID)
		}
	}

	// Fig 1b: orders-of-magnitude variation.
	if v := byID["fig1b"].Metric("variation_across_workloads"); v < 3 {
		t.Errorf("fig1b workload variation %.1fx", v)
	}
	// Fig 8a: worst pattern near 1100-repeating.
	if v := byID["fig8a"].Metric("similarity_to_1100"); v < 0.6 {
		t.Errorf("fig8a similarity %.2f", v)
	}
	// Fig 8b: temperature invariance.
	if v := byID["fig8b"].Metric("similarity_best_55_vs_60"); v < 0.6 {
		t.Errorf("fig8b invariance %.2f", v)
	}
	// Fig 8c: wide worst/best gap.
	if v := byID["fig8c"].Metric("worst_over_best"); v < 3 {
		t.Errorf("fig8c ratio %.1fx", v)
	}
	// Fig 8d: UE virus fires; CE and UE patterns differ.
	if v := byID["fig8d"].Metric("best_ue_frac"); v < 0.9 {
		t.Errorf("fig8d UE frac %.2f", v)
	}
	if v := byID["fig8d"].Metric("bits17_18_21_22_zero_frac"); v < 0.9 {
		t.Errorf("fig8d zero-bits fraction %.2f", v)
	}
	// Fig 8e: virus beats every baseline.
	if v := byID["fig8e"].Metric("virus_margin_over_baseline"); v < 0.2 {
		t.Errorf("fig8e margin %.2f", v)
	}
	// Fig 9: ideal block pattern gains over the uniform fill.
	if v := byID["fig9"].Metric("ideal_gain_over_uniform"); v < 0.05 {
		t.Errorf("fig9 ideal gain %.2f", v)
	}
	// Fig 10: 512-KByte pattern does not beat the 24-KByte pattern by a
	// meaningful margin.
	if v := byID["fig10"].Metric("gain_over_24k"); v > 0.10 {
		t.Errorf("fig10 gain over 24K %.2f — should be ~0", v)
	}
	// Fig 11: access virus above the data-only reference.
	if v := byID["fig11"].Metric("gain_over_data"); v < 0.15 {
		t.Errorf("fig11 gain %.2f", v)
	}
	// Fig 12: below template 1.
	if v := byID["fig12"].Metric("vs_template1"); v >= 0 {
		t.Errorf("fig12 not below template 1: %+.2f", v)
	}
	// Fig 13a: 24-KByte discovery probability must dwarf the 64-bit one.
	p64 := byID["fig13a"].Metric("d64_p_found_worst")
	p24s := byID["fig13a"].Metric("d24_p_stronger_exists")
	if p64 < 0.5 {
		t.Errorf("fig13a 64-bit P(found worst) %.3f", p64)
	}
	if p24s > 0.05 {
		t.Errorf("fig13a 24K P(stronger exists) %.3f — paper: 4e-7", p24s)
	}
	// Fig 13b: access-pattern confidence positive but below the 24K one.
	if v := byID["fig13b"].Metric("p_found_worst"); v < 0.3 {
		t.Errorf("fig13b P(found worst) %.3f", v)
	}
	// Fig 14: margins shrink with temperature for the data virus; savings
	// in the paper's ballpark.
	f14 := byID["fig14"]
	if f14.Metric("margin_64_bit_data_50C") < f14.Metric("margin_64_bit_data_70C") {
		t.Error("fig14 margins do not shrink with temperature")
	}
	if f14.Metric("margin_access_50C") > f14.Metric("margin_64_bit_data_50C") {
		t.Error("fig14 access margin above data margin")
	}
	if v := f14.Metric("dram_savings"); v < 0.08 || v > 0.30 {
		t.Errorf("fig14 DRAM savings %.1f%%", v*100)
	}
	if f14.Metric("validation_clean") != 1 {
		t.Error("fig14 workloads produced errors at the virus-certified margin")
	}
}
