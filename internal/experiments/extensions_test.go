package experiments

import "testing"

// TestExtensions runs the Section-VI extension experiments at the quick
// scale and checks their headline shapes.
func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions are long; run without -short")
	}
	e, err := NewEngine(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunExtensions(); err != nil {
		t.Fatal(err)
	}
	reports := e.Reports()
	if len(reports) != 5 {
		t.Fatalf("extensions produced %d reports, want 5", len(reports))
	}
	byID := map[string]*Report{}
	for _, r := range reports {
		byID[r.ID] = r
		t.Logf("\n%s", r)
	}

	// March: back-to-back finds nothing; the virus scan finds the most.
	m := byID["ext-march"]
	if m.Metric("march_plain_rows") != 0 {
		t.Error("back-to-back March detected retention faults")
	}
	if m.Metric("virus_rows") <= m.Metric("march_aware_rows") {
		t.Error("virus scan did not beat retention-aware March")
	}

	// Rowhammer: the clflush attack beats the cached virus.
	rh := byID["ext-rowhammer"]
	if rh.Metric("clflush_gain") <= 0 {
		t.Errorf("clflush gain %.2f not positive", rh.Metric("clflush_gain"))
	}

	// Profiling: MSCAN coverage below 100%.
	pr := byID["ext-profiling"]
	if pr.Metric("mscan_coverage") >= 1 {
		t.Error("MSCAN profiling missed nothing")
	}
	if pr.Metric("virus_rows") <= pr.Metric("mscan_rows") {
		t.Error("virus profile not larger than MSCAN profile")
	}

	// Refresh plans: the virus-profiled plan is safe, the MSCAN one leaks.
	rp := byID["ext-refresh"]
	if rp.Metric("virus_plan_ce") > 0.5 {
		t.Errorf("virus-profiled refresh plan leaks %.2f CEs",
			rp.Metric("virus_plan_ce"))
	}
	if rp.Metric("MSCAN_plan_ce") <= rp.Metric("virus_plan_ce") {
		t.Error("MSCAN-profiled plan not worse than the virus-profiled one")
	}
	if rp.Metric("virus_refresh_savings") < 0.5 {
		t.Errorf("refresh savings only %.1f%%",
			rp.Metric("virus_refresh_savings")*100)
	}

	// Maintenance: the degrading DIMM is flagged before the last scan.
	mt := byID["ext-maintenance"]
	if at := mt.Metric("flagged_at_scan"); at < 1 || at > 5 {
		t.Errorf("degrading DIMM flagged at scan %.0f", at)
	}
}
