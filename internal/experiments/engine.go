package experiments

import (
	"fmt"

	"dstress/internal/core"
	"dstress/internal/ga"
	"dstress/internal/server"
	"dstress/internal/xrand"
)

// Config scales the experimental campaign. The defaults regenerate every
// figure on a reduced device in a couple of minutes; larger values sharpen
// the statistics at proportional cost.
type Config struct {
	// RowsPerBank sizes the simulated DIMMs (paper hardware: 2^17; the
	// reduced device keeps the full bank/rank structure).
	RowsPerBank int
	// Seed makes the whole campaign reproducible.
	Seed uint64
	// Runs is the per-virus measurement averaging count (paper: 10).
	Runs int
	// SearchGens bounds the GA searches (the paper's two-week budget
	// reached ~80 generations).
	SearchGens int
	// BlockGens bounds the large-chromosome searches (24-KByte/512-KByte).
	BlockGens int
	// RandomSamples sizes the Fig 13 distributions.
	RandomSamples int
	// MarginGrid is the TREFP grid resolution of Fig 14.
	MarginGrid int
}

// DefaultConfig returns the standard reduced-scale campaign.
func DefaultConfig() Config {
	return Config{
		RowsPerBank:   16,
		Seed:          2020,
		Runs:          10,
		SearchGens:    120,
		BlockGens:     60,
		RandomSamples: 300,
		MarginGrid:    12,
	}
}

// QuickConfig returns a configuration small enough for unit tests and
// benchmark iterations.
func QuickConfig() Config {
	return Config{
		RowsPerBank:   16,
		Seed:          2020,
		Runs:          8,
		SearchGens:    80,
		BlockGens:     20,
		RandomSamples: 60,
		MarginGrid:    8,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.RowsPerBank <= 0:
		return fmt.Errorf("experiments: RowsPerBank = %d", c.RowsPerBank)
	case c.Runs <= 0:
		return fmt.Errorf("experiments: Runs = %d", c.Runs)
	case c.SearchGens <= 0 || c.BlockGens <= 0:
		return fmt.Errorf("experiments: generation budgets must be positive")
	case c.RandomSamples < 20:
		return fmt.Errorf("experiments: RandomSamples = %d (need >= 20)",
			c.RandomSamples)
	case c.MarginGrid < 2:
		return fmt.Errorf("experiments: MarginGrid = %d", c.MarginGrid)
	}
	return nil
}

// Engine runs the campaign, carrying discovered viruses between
// experiments.
type Engine struct {
	Cfg Config
	F   *core.Framework

	// Discovered patterns, filled in as experiments run. Standalone
	// experiment invocations fall back to the canonical worst/best words
	// (the charge-all and discharge-all patterns the searches converge to).
	WorstWord  uint64
	BestWord   uint64
	Worst64CE  float64 // CE count of the worst 64-bit virus at 60°C
	Best24KCE  float64 // CE count of the best 24-KByte virus at 60°C
	AccessT1CE float64 // CE count of the row-access virus at 60°C
	Fig8aBest  float64 // GA best fitness at 55°C (for Fig 13)
	fig8aPop   []ga.Genome
	accessBest ga.Genome
	coeffsBest ga.Genome
	data24Best ga.Genome
	reports    []*Report
}

// NewEngine builds the experimental platform.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	srv, err := server.New(server.DefaultConfig(cfg.RowsPerBank, cfg.Seed))
	if err != nil {
		return nil, err
	}
	f, err := core.New(srv, xrand.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	f.Runs = cfg.Runs
	return &Engine{
		Cfg:       cfg,
		F:         f,
		WorstWord: 0x3333333333333333,
		BestWord:  0xCCCCCCCCCCCCCCCC,
	}, nil
}

// Reports returns the accumulated reports in execution order.
func (e *Engine) Reports() []*Report { return e.reports }

func (e *Engine) add(r *Report) *Report {
	e.reports = append(e.reports, r)
	return r
}

// gaParams builds the paper's GA configuration with this campaign's budget.
func (e *Engine) gaParams(maxGens int) ga.Params {
	p := ga.DefaultParams()
	p.MaxGenerations = maxGens
	return p
}

// RunAll executes the full campaign in the paper's order.
func (e *Engine) RunAll() error {
	steps := []func() (*Report, error){
		e.Fig01bWorkloadVariation,
		e.GAParameterTuning,
		e.Fig08aWorst64Bit,
		e.Fig08bTemperatureInvariance,
		e.Fig08cBest64Bit,
		e.Fig08dUEPatterns,
		e.Fig08eMicrobenchComparison,
		e.Fig09Worst24KB,
		e.Fig10Worst512KB,
		e.Fig11AccessTemplate1,
		e.Fig12AccessTemplate2,
		e.Fig13aDataPatternPDF,
		e.Fig13bAccessPatternPDF,
		e.Fig14MarginalTREFP,
	}
	for _, step := range steps {
		if _, err := step(); err != nil {
			return err
		}
	}
	return nil
}
