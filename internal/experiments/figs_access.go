package experiments

import (
	"dstress/internal/core"
	"dstress/internal/ga"
)

// Fig11AccessTemplate1 regenerates Fig 11: the row-selection access-virus
// search. The memory holds the worst-case 64-bit data pattern; the GA
// chooses which of the ±32 neighbouring chunks of every error-prone row to
// hammer.
func (e *Engine) Fig11AccessTemplate1() (*Report, error) {
	r := newReport("fig11", "memory-access virus, row-selection template (60°C)")
	spec := core.NewAccessRowsSpec(e.WorstWord)
	res, err := e.F.RunSearch(core.SearchConfig{
		Spec:      spec,
		Criterion: core.MaxCE,
		Point:     core.Relaxed(60),
		GA:        e.gaParams(e.Cfg.SearchGens),
	})
	if err != nil {
		return nil, err
	}
	e.accessBest = res.Best
	base, err := spec.HammerlessBaseline(e.F)
	if err != nil {
		return nil, err
	}
	// Gain relative to the pure data-pattern baseline (paper: +71% over
	// the worst 24-KByte pattern).
	dataRef := e.Best24KCE
	if dataRef == 0 {
		dataRef = base.MeanCE
	}
	e.AccessT1CE = res.BestFitness
	r.Metrics["ga_best_ce"] = res.BestFitness
	r.Metrics["data_only_ce"] = base.MeanCE
	r.Metrics["gain_over_data"] = res.BestFitness/dataRef - 1
	r.Metrics["generations"] = float64(res.Generations)
	r.Metrics["final_similarity"] = res.FinalSimilarity
	r.Metrics["converged"] = boolMetric(res.Converged)
	selected := res.Best.(*ga.BitGenome).Bits.OnesCount()
	r.Metrics["selected_rows"] = float64(selected)
	r.rowf("data-only baseline: %.1f CEs; access virus: %.1f CEs (%+.0f%% vs data ref %.1f)",
		base.MeanCE, res.BestFitness,
		(res.BestFitness/dataRef-1)*100, dataRef)
	r.rowf("best chromosome selects %d/64 neighbour rows; SMF %.2f after %d generations",
		selected, res.FinalSimilarity, res.Generations)
	r.notef("paper: +71%% CEs over the worst 24-KByte data pattern; search does NOT converge (SMF 0.5)")
	return e.add(r), nil
}

// Fig12AccessTemplate2 regenerates Fig 12: the element-coefficient access
// virus (aᵢ·x+bᵢ), compared against template 1 and the data-only baseline.
func (e *Engine) Fig12AccessTemplate2() (*Report, error) {
	r := newReport("fig12", "memory-access virus, element-coefficient template (60°C)")
	spec := core.NewAccessCoeffsSpec(e.WorstWord)
	res, err := e.F.RunSearch(core.SearchConfig{
		Spec:      spec,
		Criterion: core.MaxCE,
		Point:     core.Relaxed(60),
		GA:        e.gaParams(e.Cfg.SearchGens),
	})
	if err != nil {
		return nil, err
	}
	e.coeffsBest = res.Best
	base, err := spec.HammerlessBaseline(e.F)
	if err != nil {
		return nil, err
	}
	dataRef := e.Best24KCE
	if dataRef == 0 {
		dataRef = base.MeanCE
	}
	t1 := e.AccessT1CE
	r.Metrics["ga_best_ce"] = res.BestFitness
	r.Metrics["data_only_ce"] = base.MeanCE
	r.Metrics["gain_over_data"] = res.BestFitness/dataRef - 1
	if t1 > 0 {
		r.Metrics["vs_template1"] = res.BestFitness/t1 - 1
	}
	r.Metrics["generations"] = float64(res.Generations)
	r.Metrics["final_similarity"] = res.FinalSimilarity
	r.Metrics["converged"] = boolMetric(res.Converged)
	coeffs := res.Best.(*ga.IntGenome).Vals
	r.rowf("best coefficients a: %v", coeffs[:16])
	r.rowf("best coefficients b: %v", coeffs[16:])
	r.rowf("data-only %.1f CEs; coefficient virus %.1f CEs (%+.0f%% vs data ref); template-1 %.1f CEs",
		base.MeanCE, res.BestFitness, (res.BestFitness/dataRef-1)*100, t1)
	r.notef("paper: ~10%% above the 24-KByte data pattern, below template 1; JW similarity 0.45 (no convergence)")
	return e.add(r), nil
}
