package islands

import (
	"sync"

	"dstress/internal/ga"
)

// Metrics accumulates island-search telemetry across jobs — the daemon's
// /metrics "islands" section. All methods are safe for concurrent use.
type Metrics struct {
	mu          sync.Mutex
	searches    int64
	migrations  int64
	screened    int64
	predictions int64
	exactHits   int64
	islands     []IslandStat
}

// IslandStat is the latest recorded state of one island.
type IslandStat struct {
	Island     int     `json:"island"`
	Generation int     `json:"generation"`
	Best       float64 `json:"best"`
	Similarity float64 `json:"similarity"`
}

// MetricsSnapshot is the JSON view of the accumulated counters.
type MetricsSnapshot struct {
	// Searches counts island-model searches started (including resumes).
	Searches int64 `json:"searches"`
	// Migrations counts completed ring-migration rounds.
	Migrations int64 `json:"migrations"`
	// ScreenedOut counts offspring the surrogate discarded without real
	// evaluation.
	ScreenedOut int64 `json:"screened_out"`
	// SurrogatePredictions and SurrogateExactHits count predictor calls
	// and the subset answered from an exact training match; HitRate is
	// their ratio.
	SurrogatePredictions int64   `json:"surrogate_predictions"`
	SurrogateExactHits   int64   `json:"surrogate_exact_hits"`
	SurrogateHitRate     float64 `json:"surrogate_hit_rate"`
	// Islands holds the latest per-island best/diversity, by island index,
	// for the most recent archipelago size.
	Islands []IslandStat `json:"islands,omitempty"`
}

// NewMetrics returns an empty accumulator.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) beginSearch(k int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.searches++
	m.islands = make([]IslandStat, k)
	for i := range m.islands {
		m.islands[i].Island = i
	}
}

func (m *Metrics) addMigrations(n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.migrations += n
	m.mu.Unlock()
}

func (m *Metrics) addScreened(n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.screened += n
	m.mu.Unlock()
}

func (m *Metrics) addSurrogate(predictions, exactHits int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.predictions += predictions
	m.exactHits += exactHits
	m.mu.Unlock()
}

func (m *Metrics) reportIsland(i int, st ga.GenStats) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < len(m.islands) {
		m.islands[i] = IslandStat{Island: i, Generation: st.Generation,
			Best: st.Best, Similarity: st.Similarity}
	}
}

// Snapshot returns a copy of the counters for serving.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Searches:             m.searches,
		Migrations:           m.migrations,
		ScreenedOut:          m.screened,
		SurrogatePredictions: m.predictions,
		SurrogateExactHits:   m.exactHits,
		Islands:              append([]IslandStat(nil), m.islands...),
	}
	if m.predictions > 0 {
		snap.SurrogateHitRate = float64(m.exactHits) / float64(m.predictions)
	}
	return snap
}
