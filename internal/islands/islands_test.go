package islands

import (
	"context"
	"testing"

	"dstress/internal/ga"
	"dstress/internal/predict"
	"dstress/internal/xrand"
)

const testBits = 24

func bitCountBatch() ga.BatchFitness {
	return ga.SerialBatch(func(g ga.Genome) (float64, error) {
		return float64(g.(*ga.BitGenome).Bits.OnesCount()), nil
	})
}

func testParams() ga.Params {
	p := ga.DefaultParams()
	p.PopulationSize = 8
	p.MaxGenerations = 12
	p.ConvergenceSim = 1
	p.UseConvergeMinBest = true
	p.ConvergeMinBest = float64(testBits + 1) // unreachable: run full length
	return p
}

// newTestModel builds a model with one bit-count evaluator per island and
// the repo's split discipline: engine RNGs then population RNGs, island
// order, all off one root.
func newTestModel(t *testing.T, params ga.Params, cfg Config, seed uint64) (*Model, [][]ga.Genome) {
	t.Helper()
	cfg = cfg.Normalize()
	root := xrand.New(seed)
	k := cfg.Count
	rngs := make([]*xrand.Rand, k)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	initial := make([][]ga.Genome, k)
	for i := range initial {
		initial[i] = ga.RandomBitPopulation(params.PopulationSize, testBits, root.Split())
	}
	batches := make([]ga.BatchFitness, k)
	for i := range batches {
		batches[i] = bitCountBatch()
	}
	m, err := New(params, cfg, batches, rngs)
	if err != nil {
		t.Fatal(err)
	}
	return m, initial
}

func assertSameResult(t *testing.T, a, b Result) {
	t.Helper()
	if a.Generations != b.Generations || a.Converged != b.Converged ||
		a.Canceled != b.Canceled || a.Evaluations != b.Evaluations ||
		a.Migrations != b.Migrations || a.Screened != b.Screened {
		t.Fatalf("result headers differ:\n%+v\n%+v", a, b)
	}
	if a.BestFitness != b.BestFitness ||
		a.Best.(*ga.BitGenome).Bits.BitString() != b.Best.(*ga.BitGenome).Bits.BitString() {
		t.Fatalf("best differs: %v vs %v", a.BestFitness, b.BestFitness)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history[%d] differs: %+v vs %+v", i, a.History[i], b.History[i])
		}
	}
	if len(a.Population) != len(b.Population) {
		t.Fatalf("population sizes differ")
	}
	for i := range a.Population {
		if a.Fitnesses[i] != b.Fitnesses[i] ||
			a.Population[i].(*ga.BitGenome).Bits.BitString() !=
				b.Population[i].(*ga.BitGenome).Bits.BitString() {
			t.Fatalf("population[%d] differs", i)
		}
	}
	for i := range a.IslandBests {
		if a.IslandBests[i] != b.IslandBests[i] {
			t.Fatalf("island %d best differs: %v vs %v", i, a.IslandBests[i], b.IslandBests[i])
		}
	}
}

func TestIslandsDeterministicRepeat(t *testing.T) {
	for _, k := range []int{2, 4} {
		cfg := Config{Count: k, MigrateEvery: 3, MigrateCount: 2}
		m1, init1 := newTestModel(t, testParams(), cfg, 42)
		r1, err := m1.Run(context.Background(), init1)
		if err != nil {
			t.Fatal(err)
		}
		m2, init2 := newTestModel(t, testParams(), cfg, 42)
		r2, err := m2.Run(context.Background(), init2)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, r1, r2)
		if r1.Migrations == 0 {
			t.Fatal("no migrations happened")
		}
	}
}

func TestIslandsMigrationSchedule(t *testing.T) {
	cfg := Config{Count: 3, MigrateEvery: 2, MigrateCount: 1}
	m, init := newTestModel(t, testParams(), cfg, 7)
	res, err := m.Run(context.Background(), init)
	if err != nil {
		t.Fatal(err)
	}
	// Migration fires when a closed generation index is divisible by the
	// period: generations 2,4,...,12 with MaxGenerations 12 → 6 rounds.
	if res.Generations != 12 || res.Migrations != 6 {
		t.Fatalf("generations %d migrations %d, want 12 and 6",
			res.Generations, res.Migrations)
	}
	// The aggregate best must dominate every island best and equal the max.
	max := res.IslandBests[0]
	for _, b := range res.IslandBests {
		if b > max {
			max = b
		}
	}
	if res.BestFitness != max {
		t.Fatalf("merged best %v != max island best %v", res.BestFitness, max)
	}
}

func TestIslandsSurrogateScreening(t *testing.T) {
	cfg := Config{
		Count: 2, MigrateEvery: 4, MigrateCount: 1,
		Surrogate: predict.ScreenPolicy{
			Enabled: true, Overbreed: 2, MinTrain: 8, Neighbors: 4, Capacity: 64,
		},
	}
	m1, init1 := newTestModel(t, testParams(), cfg, 11)
	r1, err := m1.Run(context.Background(), init1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Screened == 0 {
		t.Fatal("surrogate screened nothing despite overbreeding")
	}
	if r1.Surrogate.Predictions == 0 || r1.Surrogate.Observations == 0 {
		t.Fatalf("surrogate idle: %+v", r1.Surrogate)
	}
	// Screening must not change the number of real evaluations per
	// generation: initial pops + need per island per generation.
	p := testParams()
	want := cfg.Count * (p.PopulationSize + (r1.Generations-1)*(p.PopulationSize-p.ElitismCount))
	if r1.Evaluations != want {
		t.Fatalf("evaluations %d, want %d", r1.Evaluations, want)
	}
	m2, init2 := newTestModel(t, testParams(), cfg, 11)
	r2, err := m2.Run(context.Background(), init2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, r1, r2)
}

func TestIslandsModelSnapshotResume(t *testing.T) {
	cfg := Config{
		Count: 2, MigrateEvery: 2, MigrateCount: 2,
		Surrogate: predict.ScreenPolicy{
			Enabled: true, Overbreed: 2, MinTrain: 8, Neighbors: 4, Capacity: 64,
		},
	}
	full, initFull := newTestModel(t, testParams(), cfg, 23)
	rFull, err := full.Run(context.Background(), initFull)
	if err != nil {
		t.Fatal(err)
	}

	// Capture the archipelago at generation 5 (a migration generation, so
	// the snapshot includes injected migrants), then resume a fresh model.
	part, initPart := newTestModel(t, testParams(), cfg, 23)
	var snap Snapshot
	ctx, cancel := context.WithCancel(context.Background())
	part.AfterGeneration = func() {
		if part.gen == 5 {
			s, err := part.Snapshot()
			if err != nil {
				t.Error(err)
			}
			snap = s
			cancel()
		}
	}
	if _, err := part.Run(ctx, initPart); err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 5 {
		t.Fatalf("snapshot at generation %d", snap.Generation)
	}

	resumed, _ := newTestModel(t, testParams(), cfg, 999) // RNGs overwritten by Restore
	rRes, err := resumed.Resume(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, rFull, rRes)
}

func TestIslandsCancelReturnsBestAcrossIslands(t *testing.T) {
	cfg := Config{Count: 4, MigrateEvery: 100, MigrateCount: 1} // no migration
	m, init := newTestModel(t, testParams(), cfg, 31)
	ctx, cancel := context.WithCancel(context.Background())
	m.OnGeneration = func(st ga.GenStats) {
		if st.Generation == 4 {
			cancel()
		}
	}
	res, err := m.Run(ctx, init)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || res.Generations != 4 {
		t.Fatalf("canceled=%v generations=%d", res.Canceled, res.Generations)
	}
	max := res.IslandBests[0]
	argmax := 0
	for i, b := range res.IslandBests {
		if b > max {
			max, argmax = b, i
		}
	}
	if res.BestFitness != max {
		t.Fatalf("cancelled result best %v is not the archipelago max %v (island %d)",
			res.BestFitness, max, argmax)
	}
}

// TestIslandsMidBatchCancel cancels the context while one island's batch is
// mid-evaluation: every island must discard that generation's offspring so
// the archipelago stays in lockstep, and the merged result must still carry
// the best genome across islands.
func TestIslandsMidBatchCancel(t *testing.T) {
	cfg := Config{Count: 3, MigrateEvery: 100, MigrateCount: 1}.Normalize()
	params := testParams()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	root := xrand.New(77)
	rngs := make([]*xrand.Rand, cfg.Count)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	initial := make([][]ga.Genome, cfg.Count)
	for i := range initial {
		initial[i] = ga.RandomBitPopulation(params.PopulationSize, testBits, root.Split())
	}
	gen := 0
	batches := make([]ga.BatchFitness, cfg.Count)
	for i := range batches {
		i := i
		inner := bitCountBatch()
		batches[i] = func(c context.Context, gs []ga.Genome) ([]float64, error) {
			if i == 1 && gen == 4 {
				cancel() // mid-batch: island 1's generation-5 offspring die here
			}
			return inner(c, gs)
		}
	}
	m, err := New(params, cfg, batches, rngs)
	if err != nil {
		t.Fatal(err)
	}
	m.OnGeneration = func(st ga.GenStats) { gen = st.Generation }
	res, err := m.Run(ctx, initial)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("result not marked canceled")
	}
	if res.Generations != 4 {
		t.Fatalf("archipelago out of lockstep: stopped at generation %d", res.Generations)
	}
	max := res.IslandBests[0]
	for _, b := range res.IslandBests {
		if b > max {
			max = b
		}
	}
	if res.BestFitness != max {
		t.Fatalf("cancelled best %v is not the archipelago max %v", res.BestFitness, max)
	}
}

func TestIslandsConfigValidate(t *testing.T) {
	p := testParams()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"too many islands", Config{Count: 65}},
		{"migrants exceed population", Config{Count: 2, MigrateCount: p.PopulationSize}},
		{"unknown surrogate version", Config{Count: 2,
			Surrogate: predict.ScreenPolicy{Enabled: true, Version: 99}}},
		{"capacity below min_train", Config{Count: 2,
			Surrogate: predict.ScreenPolicy{Enabled: true, MinTrain: 100, Capacity: 50}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(p); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := (Config{}).Validate(p); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if !(Config{Surrogate: predict.ScreenPolicy{Enabled: true}}).Enabled() {
		t.Error("surrogate-only config not enabled")
	}
	n := Config{Count: 2}.Normalize()
	if n.MigrateEvery != 5 || n.MigrateCount != 2 {
		t.Errorf("defaults not filled: %+v", n)
	}
	if n.Normalize() != n {
		t.Error("normalize not idempotent")
	}
}
