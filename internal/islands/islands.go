// Package islands implements the island-model genetic search: K
// subpopulations (each a full ga search with its own RNG split) evolving in
// lockstep over independent evaluators, exchanging elites on a deterministic
// ring schedule, optionally screening offspring through the surrogate
// predictor in internal/predict.
//
// Determinism contract. All randomness lives in the per-island RNG splits
// and the evaluators' own noise protocol; the orchestrator itself —
// migration, screening, aggregation — consumes no randomness and runs its
// serial sections in island-index order. Per generation:
//
//  1. breed+screen, islands 0..K-1 in order (island RNGs only);
//  2. real evaluation of every island's kept offspring, concurrently —
//     islands never share state here, so scheduling cannot reorder anything
//     observable;
//  3. advance + surrogate training, islands 0..K-1 in order;
//  4. on migration generations, collect every island's emigrants first,
//     then inject island i's emigrants into island (i+1) mod K.
//
// The result is bit-identical at any farm worker count, any fleet node
// count, and across kill-and-resume, under both determinism contracts.
package islands

import (
	"context"
	"fmt"
	"sync"

	"dstress/internal/ga"
	"dstress/internal/predict"
	"dstress/internal/xrand"
)

// Config selects the island topology and the surrogate screening policy.
// The zero value means "no islands": callers use Enabled to keep the
// classic single-population path.
type Config struct {
	// Count is the number of islands K.
	Count int `json:"count"`
	// MigrateEvery is the migration period G in generations (default 5).
	MigrateEvery int `json:"migrate_every,omitempty"`
	// MigrateCount is the number of elites M each island ships to its ring
	// neighbour on a migration generation (default 2).
	MigrateCount int `json:"migrate_count,omitempty"`
	// Surrogate is the offspring screening policy; off by default.
	Surrogate predict.ScreenPolicy `json:"surrogate,omitempty"`
}

// Enabled reports whether the config asks for the island path at all: an
// explicit island count (Count 1 runs a single population under the island
// protocol — migration-free but checkpointed and screened the same way) or
// surrogate screening. The zero value keeps the classic single-population
// path.
func (c Config) Enabled() bool { return c.Count >= 1 || c.Surrogate.Enabled }

// Normalize fills defaults. A disabled config normalizes to the zero value.
// Normalization is idempotent; checkpoints store the normalized form and
// resume compares against it.
func (c Config) Normalize() Config {
	if !c.Enabled() {
		return Config{}
	}
	if c.Count < 1 {
		c.Count = 1
	}
	if c.MigrateEvery <= 0 {
		c.MigrateEvery = 5
	}
	if c.MigrateCount <= 0 {
		c.MigrateCount = 2
	}
	c.Surrogate = c.Surrogate.Normalize()
	return c
}

// Validate rejects configs the model cannot run against the given GA
// parameters.
func (c Config) Validate(p ga.Params) error {
	if !c.Enabled() {
		return nil
	}
	c = c.Normalize()
	switch {
	case c.Count > 64:
		return fmt.Errorf("islands: count %d too large (max 64)", c.Count)
	case c.MigrateCount >= p.PopulationSize:
		return fmt.Errorf("islands: migrate_count %d >= population %d",
			c.MigrateCount, p.PopulationSize)
	}
	return c.Surrogate.Validate()
}

// Snapshot is the archipelago's resumable state: the config it ran under,
// every island's engine snapshot, the migration/screening counters and the
// surrogate training window. Together with the evaluators' own RNG states
// (stored by the caller) it resumes bit-identically.
type Snapshot struct {
	Config     Config                     `json:"config"`
	Generation int                        `json:"generation"`
	Migrations int                        `json:"migrations"`
	Screened   int64                      `json:"screened"`
	Islands    []ga.Snapshot              `json:"islands"`
	Surrogate  *predict.SurrogateSnapshot `json:"surrogate,omitempty"`
}

// Result is the outcome of an island search. The embedded ga.Result holds
// the merged final population (all islands, sorted, truncated to one
// population size), so Best is the best genome across every island —
// including when the search is cancelled mid-batch.
type Result struct {
	ga.Result
	// Evaluations counts real fitness calls summed over islands.
	Evaluations int
	// Migrations counts completed migration rounds.
	Migrations int
	// Screened counts offspring discarded by the surrogate without real
	// evaluation.
	Screened int64
	// IslandBests holds each island's final best fitness, by island index.
	IslandBests []float64
	// Surrogate summarizes predictor activity (zero value when disabled).
	Surrogate predict.SurrogateStats
}

// Model orchestrates one archipelago search.
type Model struct {
	cfg    Config
	params ga.Params
	st     []*ga.Stepper
	surr   *predict.Surrogate

	gen        int
	migrations int
	screened   int64
	history    []ga.GenStats
	lastSurr   predict.SurrogateStats

	// OnGeneration observes the aggregated per-generation statistics
	// (Best = max over islands, Mean/Similarity = means over islands).
	OnGeneration func(ga.GenStats)
	// OnIsland observes each island's own statistics, in island order,
	// before OnGeneration fires for the aggregate.
	OnIsland func(island int, st ga.GenStats)
	// AfterGeneration runs after a generation is fully closed (advanced,
	// migrated, recorded) — the checkpoint seam. To abort the search it
	// cancels the run context.
	AfterGeneration func()

	met *Metrics
}

// New builds a model. batches and rngs carry one evaluator and one RNG
// split per island, in island order; the split order is the caller's
// protocol (see core's island RNG split tree).
func New(params ga.Params, cfg Config, batches []ga.BatchFitness, rngs []*xrand.Rand) (*Model, error) {
	cfg = cfg.Normalize()
	if !cfg.Enabled() {
		return nil, fmt.Errorf("islands: config selects no islands")
	}
	if err := cfg.Validate(params); err != nil {
		return nil, err
	}
	if len(batches) != cfg.Count || len(rngs) != cfg.Count {
		return nil, fmt.Errorf("islands: %d islands need %d evaluators and %d rngs",
			cfg.Count, len(batches), len(rngs))
	}
	m := &Model{cfg: cfg, params: params, st: make([]*ga.Stepper, cfg.Count)}
	for i := range m.st {
		st, err := ga.NewStepper(params, batches[i], rngs[i])
		if err != nil {
			return nil, err
		}
		m.st[i] = st
	}
	if cfg.Surrogate.Enabled {
		surr, err := predict.NewSurrogate(cfg.Surrogate)
		if err != nil {
			return nil, err
		}
		m.surr = surr
	}
	return m, nil
}

// SetMetrics attaches a shared metrics accumulator.
func (m *Model) SetMetrics(met *Metrics) { m.met = met }

// Config returns the normalized config the model runs.
func (m *Model) Config() Config { return m.cfg }

// Run executes the search from one initial population per island. Like
// ga.Engine, cancellation after the initial evaluation returns the
// best-so-far result with Canceled set and a nil error; only a cancellation
// before any generation completes, or an evaluator error, is an error.
func (m *Model) Run(ctx context.Context, initial [][]ga.Genome) (Result, error) {
	if m.params.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.params.MaxDuration)
		defer cancel()
	}
	if len(initial) != len(m.st) {
		return Result{}, fmt.Errorf("islands: %d initial populations for %d islands",
			len(initial), len(m.st))
	}
	if m.met != nil {
		m.met.beginSearch(len(m.st))
	}
	per := make([]ga.GenStats, len(m.st))
	err := m.parallelIslands(func(i int) error {
		st, err := m.st[i].Start(ctx, initial[i])
		per[i] = st
		return err
	})
	if err != nil {
		return Result{}, err
	}
	m.gen = 1
	m.observeIslandPops()
	m.closeGeneration(per)
	return m.runLoop(ctx)
}

// Resume continues a search from a Snapshot. The model must have been built
// with the snapshot's config (callers take it from the checkpoint) and with
// evaluators whose own state the caller already restored.
func (m *Model) Resume(ctx context.Context, snap Snapshot) (Result, error) {
	if m.params.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.params.MaxDuration)
		defer cancel()
	}
	if snap.Config.Normalize() != m.cfg {
		return Result{}, fmt.Errorf("islands: snapshot config %+v does not match model %+v",
			snap.Config.Normalize(), m.cfg)
	}
	if len(snap.Islands) != len(m.st) {
		return Result{}, fmt.Errorf("islands: snapshot holds %d islands, model has %d",
			len(snap.Islands), len(m.st))
	}
	for i := range m.st {
		if err := m.st[i].Restore(snap.Islands[i]); err != nil {
			return Result{}, fmt.Errorf("islands: island %d: %w", i, err)
		}
		if g := m.st[i].Generation(); g != snap.Generation {
			return Result{}, fmt.Errorf("islands: island %d at generation %d, snapshot at %d",
				i, g, snap.Generation)
		}
	}
	m.gen = snap.Generation
	m.migrations = snap.Migrations
	m.screened = snap.Screened
	if m.surr != nil {
		if snap.Surrogate == nil {
			return Result{}, fmt.Errorf("islands: snapshot missing surrogate state")
		}
		surr, err := predict.RestoreSurrogate(*snap.Surrogate)
		if err != nil {
			return Result{}, err
		}
		m.surr = surr
		m.lastSurr = surr.Stats()
	}
	// Rebuild the aggregated history from the aligned per-island histories;
	// hooks are not re-fired for already-recorded generations.
	m.history = m.history[:0]
	per := make([]ga.GenStats, len(m.st))
	for g := 0; g < m.gen; g++ {
		for i, st := range m.st {
			h := st.History()
			if len(h) != m.gen {
				return Result{}, fmt.Errorf("islands: island %d history %d entries, want %d",
					i, len(h), m.gen)
			}
			per[i] = h[g]
		}
		m.history = append(m.history, m.aggregate(g+1, per))
	}
	if m.met != nil {
		m.met.beginSearch(len(m.st))
	}
	return m.runLoop(ctx)
}

// runLoop is the lockstep generation loop, shared by Run and Resume. On
// entry generation m.gen is fully closed.
func (m *Model) runLoop(ctx context.Context) (Result, error) {
	canceled := false
	// Fixed-size per-generation scratch, hoisted out of the loop: every slot
	// is overwritten each generation before it is read.
	broods := make([][]ga.Genome, len(m.st))
	fits := make([][]float64, len(m.st))
	per := make([]ga.GenStats, len(m.st))
	for {
		if m.allConverged() {
			return m.finalize(true, false), nil
		}
		if m.gen >= m.params.MaxGenerations {
			break
		}
		if ctx.Err() != nil {
			canceled = true
			break
		}

		// Breed and screen serially, island order: only island RNGs draw.
		for i, st := range m.st {
			need := st.Need()
			n := need
			if m.surr != nil && m.surr.Ready() && m.cfg.Surrogate.Overbreed > 1 {
				n = need * m.cfg.Surrogate.Overbreed
			}
			kids := st.Breed(n)
			if n > need {
				kids = m.screen(kids, need)
			}
			broods[i] = kids
		}

		// Real evaluation, concurrently across islands.
		err := m.parallelIslands(func(i int) error {
			f, err := m.st[i].Evaluate(ctx, broods[i])
			fits[i] = f
			return err
		})
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled mid-batch: every island discards this
				// generation's offspring and the last complete lockstep
				// generation stands — on all islands, so the final merge
				// still picks the best genome across the archipelago.
				canceled = true
				break
			}
			return Result{}, err
		}

		// Advance and train serially, island order.
		for i, st := range m.st {
			gst, err := st.Advance(broods[i], fits[i])
			if err != nil {
				return Result{}, err
			}
			per[i] = gst
			if m.surr != nil {
				for j, g := range broods[i] {
					m.surr.Observe(g, fits[i][j])
				}
			}
		}
		m.gen++

		if len(m.st) >= 2 && m.gen%m.cfg.MigrateEvery == 0 {
			m.migrate()
		}
		m.closeGeneration(per)
	}
	return m.finalize(false, canceled), nil
}

// screen ranks overbred offspring by predicted fitness and keeps the best
// `need`, preserving breeding order among the kept (their batch index is
// part of the evaluators' noise protocol). Ties in prediction keep the
// earlier-bred candidate.
func (m *Model) screen(kids []ga.Genome, need int) []ga.Genome {
	preds := make([]float64, len(kids))
	for i, g := range kids {
		preds[i] = m.surr.Predict(g)
	}
	order := make([]int, len(kids))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending prediction, stable in breeding order.
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && preds[order[j]] < preds[v] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
	keep := append([]int(nil), order[:need]...)
	// Restore breeding order among the kept.
	for i := 1; i < len(keep); i++ {
		v := keep[i]
		j := i - 1
		for j >= 0 && keep[j] > v {
			keep[j+1] = keep[j]
			j--
		}
		keep[j+1] = v
	}
	out := make([]ga.Genome, need)
	for i, idx := range keep {
		out[i] = kids[idx]
	}
	dropped := int64(len(kids) - need)
	m.screened += dropped
	if m.met != nil {
		m.met.addScreened(dropped)
	}
	return out
}

// migrate ships each island's top MigrateCount elites to its ring
// neighbour. All emigrants are collected before any injection, so the
// exchange is simultaneous and independent of island order; injection
// itself consumes no randomness.
func (m *Model) migrate() {
	cnt := m.cfg.MigrateCount
	emg := make([][]ga.Genome, len(m.st))
	emf := make([][]float64, len(m.st))
	for i, st := range m.st {
		emg[i], emf[i] = st.Emigrants(cnt)
	}
	for i := range m.st {
		m.st[(i+1)%len(m.st)].Inject(emg[i], emf[i])
	}
	m.migrations++
	if m.met != nil {
		m.met.addMigrations(1)
	}
}

// closeGeneration records the aggregate statistics and fires the hooks.
func (m *Model) closeGeneration(per []ga.GenStats) {
	agg := m.aggregate(m.gen, per)
	m.history = append(m.history, agg)
	for i, st := range per {
		if m.OnIsland != nil {
			m.OnIsland(i, st)
		}
		if m.met != nil {
			m.met.reportIsland(i, st)
		}
	}
	if m.surr != nil && m.met != nil {
		cur := m.surr.Stats()
		m.met.addSurrogate(cur.Predictions-m.lastSurr.Predictions,
			cur.ExactHits-m.lastSurr.ExactHits)
		m.lastSurr = cur
	}
	if m.OnGeneration != nil {
		m.OnGeneration(agg)
	}
	if m.AfterGeneration != nil {
		m.AfterGeneration()
	}
}

// aggregate folds per-island statistics into one GenStats: best of bests,
// mean of means, mean of similarities.
func (m *Model) aggregate(gen int, per []ga.GenStats) ga.GenStats {
	agg := ga.GenStats{Generation: gen, Best: per[0].Best}
	for _, st := range per {
		if st.Best > agg.Best {
			agg.Best = st.Best
		}
		agg.Mean += st.Mean
		agg.Similarity += st.Similarity
	}
	agg.Mean /= float64(len(per))
	agg.Similarity /= float64(len(per))
	return agg
}

// observeIslandPops trains the surrogate on the already-evaluated initial
// populations, in island then rank order.
func (m *Model) observeIslandPops() {
	if m.surr == nil {
		return
	}
	for _, st := range m.st {
		pop, fits := st.Current()
		for i, g := range pop {
			m.surr.Observe(g, fits[i])
		}
	}
}

func (m *Model) allConverged() bool {
	for _, st := range m.st {
		if !st.Converged() {
			return false
		}
	}
	return true
}

// finalize merges the islands into one result. The final population is
// every island's population, sorted by descending fitness and truncated to
// PopulationSize, so Best is the best genome across the whole archipelago.
func (m *Model) finalize(converged, canceled bool) Result {
	var pop []ga.Genome
	var fits []float64
	res := Result{
		Migrations:  m.migrations,
		Screened:    m.screened,
		IslandBests: make([]float64, len(m.st)),
	}
	var simSum float64
	for i, st := range m.st {
		p, f := st.Current()
		pop = append(pop, p...)
		fits = append(fits, f...)
		_, res.IslandBests[i] = st.Best()
		simSum += st.Similarity()
		res.Evaluations += st.Evaluations()
	}
	ga.SortByFitness(pop, fits)
	if len(pop) > m.params.PopulationSize {
		pop = pop[:m.params.PopulationSize]
		fits = fits[:m.params.PopulationSize]
	}
	res.Population = pop
	res.Fitnesses = fits
	res.Best = pop[0]
	res.BestFitness = fits[0]
	res.Generations = m.gen
	res.Converged = converged
	res.Canceled = canceled
	res.FinalSimilarity = simSum / float64(len(m.st))
	res.History = append([]ga.GenStats(nil), m.history...)
	if m.surr != nil {
		res.Surrogate = m.surr.Stats()
	}
	return res
}

// Snapshot captures the archipelago at the current generation boundary.
func (m *Model) Snapshot() (Snapshot, error) {
	s := Snapshot{
		Config:     m.cfg,
		Generation: m.gen,
		Migrations: m.migrations,
		Screened:   m.screened,
		Islands:    make([]ga.Snapshot, len(m.st)),
	}
	for i, st := range m.st {
		snap, err := st.Snapshot()
		if err != nil {
			return Snapshot{}, fmt.Errorf("islands: island %d: %w", i, err)
		}
		s.Islands[i] = snap
	}
	if m.surr != nil {
		ss, err := m.surr.Snapshot()
		if err != nil {
			return Snapshot{}, err
		}
		s.Surrogate = &ss
	}
	return s, nil
}

// parallelIslands runs fn for every island concurrently and returns the
// lowest-index error — a deterministic pick when several islands fail.
func (m *Model) parallelIslands(fn func(i int) error) error {
	errs := make([]error, len(m.st))
	var wg sync.WaitGroup
	for i := range m.st {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
