// Package fleet distributes virus fitness evaluation across machines. The
// farm (package farm) spreads a GA generation over the cores of one host;
// the fleet spreads it over a fleet of hosts, turning the campaign daemon
// into a coordinator that remote worker processes join over HTTP.
//
// The protocol has four verbs:
//
//	join       a worker registers and receives its id and heartbeat interval
//	heartbeat  a worker proves liveness (and reports its transport retries)
//	lease      a worker pulls one shard of a pending batch (long poll)
//	report     a worker delivers a shard's fitness values, or its failure
//
// Determinism is inherited from the farm, not re-invented: a Session wraps a
// farm.Pool and reuses its serial prologue — one noise stream split off the
// root per chromosome, in index order, cache consulted in index order — and
// only replaces the dispatch step. Each shipped task carries its genome and
// the four state words of its pre-split RNG stream, so any worker, local or
// remote, measuring (genome, stream) on an identically constructed server
// produces the same value. Results are therefore bit-identical at any node
// count, through any re-queueing, and identical to the purely local
// farm.Pool run (server.Clone rebuilds from config, so a remote worker
// constructing the server from the shipped description starts from the same
// machine a local farm clone does).
//
// Failure handling: a worker that stops heartbeating is deregistered and its
// leased shards re-queued onto survivors; a leased shard not reported within
// the lease TTL is re-queued even if its holder still heartbeats (a stuck
// worker must not wedge the search — duplicated evaluations are wasted, not
// wrong, and the first report wins); a batch with no live workers degrades
// to the session's local pool. Workers retry transport errors with capped
// exponential backoff plus jitter and re-join when the coordinator forgets
// them (restart, expiry).
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"dstress/internal/ga"
)

// contextDigest is the cache identity of an evaluation context — computed
// identically on both sides of the wire so a coordinator's digest matches
// the key a worker cached its evaluator under.
func contextDigest(evalCtx json.RawMessage) string {
	sum := sha256.Sum256(evalCtx)
	return hex.EncodeToString(sum[:])
}

// Task is one genome evaluation, fully determined by its wire content: the
// serialized chromosome and the state of the pre-split noise stream that
// must measure it.
type Task struct {
	Index  int             `json:"index"`
	Genome ga.GenomeRecord `json:"genome"`
	RNG    [4]uint64       `json:"rng"`
}

// TaskResult is one task's measured fitness.
type TaskResult struct {
	Index   int     `json:"index"`
	Fitness float64 `json:"fitness"`
}

// Shard is the leased unit of work: a slice of one batch's tasks plus the
// opaque description of the evaluation environment the worker must build
// (the daemon ships its job request; the fleet never interprets it).
type Shard struct {
	ID string `json:"id"`
	// Context is the shared evaluation-environment payload. It is shipped
	// once per environment per worker: when the leasing worker advertised
	// ContextDigest as already cached, the coordinator omits it and the
	// shard carries only the digest.
	Context json.RawMessage `json:"context,omitempty"`
	// ContextDigest is the hex SHA-256 of the context payload. Workers key
	// their built-evaluator cache by it and advertise known digests on every
	// lease, shrinking steady-state shard payloads from the whole job
	// request to 64 bytes.
	ContextDigest string `json:"context_digest,omitempty"`
	Tasks         []Task `json:"tasks"`
	// LeaseS is how long the worker holds the lease before the coordinator
	// re-queues the shard, in seconds.
	LeaseS float64 `json:"lease_s"`
}

// The wire bodies of the four protocol verbs.
type joinRequest struct {
	Name string `json:"name"`
}

type joinResponse struct {
	WorkerID string `json:"worker_id"`
	// HeartbeatS is the heartbeat interval the coordinator expects.
	HeartbeatS float64 `json:"heartbeat_s"`
}

type heartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	// Retries is the worker's cumulative transport-retry count, giving the
	// coordinator's metrics a fleet-wide view of link health.
	Retries int64 `json:"retries,omitempty"`
}

type leaseRequest struct {
	WorkerID string  `json:"worker_id"`
	WaitS    float64 `json:"wait_s,omitempty"` // long-poll budget
	// Contexts lists the context digests this worker holds built evaluators
	// for; the coordinator omits Shard.Context for any of them. An older
	// worker that never advertises simply receives the full payload every
	// time — the field is an optimization, not a protocol break.
	Contexts []string `json:"contexts,omitempty"`
}

type leaseResponse struct {
	Shard *Shard `json:"shard"` // nil: no work within the wait budget
}

type reportRequest struct {
	WorkerID string       `json:"worker_id"`
	ShardID  string       `json:"shard_id"`
	Results  []TaskResult `json:"results,omitempty"`
	// Error carries an evaluation failure (not a transport problem): it
	// fails the whole batch, exactly as a local worker error fails a pool
	// batch.
	Error string `json:"error,omitempty"`
}
