package fleet

import (
	"context"
	"time"

	"dstress/internal/xrand"
)

// Backoff produces capped exponential delays with jitter for transport
// retries. The zero value is not usable; construct with NewBackoff.
type Backoff struct {
	min, max time.Duration
	factor   float64
	cur      time.Duration
	rng      *xrand.Rand
}

// NewBackoff builds a backoff ramping from min to max by factor. Non-positive
// arguments select the defaults (100ms, 5s, 2).
func NewBackoff(min, max time.Duration, factor float64, rng *xrand.Rand) *Backoff {
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < min {
		max = min
	}
	if factor <= 1 {
		factor = 2
	}
	if rng == nil {
		rng = xrand.New(uint64(time.Now().UnixNano()))
	}
	return &Backoff{min: min, max: max, factor: factor, rng: rng}
}

// Next returns the next delay: half the current ceiling plus a jittered half,
// so consecutive workers hammering one coordinator decorrelate while the
// configured ceiling is always respected.
func (b *Backoff) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.min
	}
	d := time.Duration(float64(b.cur)/2 + b.rng.Float64()*float64(b.cur)/2)
	b.cur = time.Duration(float64(b.cur) * b.factor)
	if b.cur > b.max {
		b.cur = b.max
	}
	return d
}

// Reset drops back to the minimum delay after a success.
func (b *Backoff) Reset() { b.cur = 0 }

// Sleep waits for the next delay or until the context ends.
func (b *Backoff) Sleep(ctx context.Context) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
