package fleet

import (
	"context"
	"encoding/json"
	"time"

	"dstress/internal/farm"
	"dstress/internal/ga"
)

// Session is one search's view of the fleet. It wraps the search's own
// farm.Pool and reuses the pool's serial prologue wholesale — stream
// splitting, cache resolution and root-stream advancement are byte-for-byte
// the pool's — replacing only the dispatch step, so checkpoints, cache
// behaviour and results are identical whether a batch ran locally, remotely,
// or ended up split between the two by a mid-batch failure.
type Session struct {
	c       *Coordinator
	pool    *farm.Pool
	evalCtx json.RawMessage
}

// NewSession binds a search to the fleet. evalCtx is the opaque description
// of the evaluation environment shipped to workers with every shard (the
// daemon uses its job request); the fleet never interprets it.
func (c *Coordinator) NewSession(evalCtx json.RawMessage, pool *farm.Pool) *Session {
	return &Session{c: c, pool: pool, evalCtx: evalCtx}
}

// Pool returns the wrapped local pool.
func (s *Session) Pool() *farm.Pool { return s.pool }

// Batch exposes the session as a pluggable engine evaluator.
func (s *Session) Batch() ga.BatchFitness { return s.EvaluateBatch }

// RootState captures the noise-root position, exactly as the pool's: the
// fleet never advances the root, so fleet checkpoints are pool checkpoints.
func (s *Session) RootState() [4]uint64 { return s.pool.RootState() }

// EvaluateBatch measures every genome, distributing the post-cache work over
// the fleet's live workers; with none registered it degrades to the local
// pool. The result is bit-identical to pool.EvaluateBatch in all cases.
func (s *Session) EvaluateBatch(ctx context.Context, gs []ga.Genome) ([]float64, error) {
	return s.pool.EvaluateBatchVia(ctx, gs, s.dispatch)
}

// dispatch is the Session's farm.Dispatcher: shard across live workers, wait
// with failure sweeps, reclaim orphaned shards for local evaluation when the
// fleet empties out mid-batch.
func (s *Session) dispatch(ctx context.Context, tasks []farm.Assigned,
	out []float64) error {
	if len(tasks) == 0 {
		return nil
	}
	if s.c == nil || s.c.LiveWorkers() == 0 {
		return s.runLocal(ctx, tasks, out)
	}
	b, err := s.c.submitBatch(s.evalCtx, tasks, out)
	if err != nil {
		// Un-shippable genome encoding: the local path needs no encoding, so
		// degrade rather than fail the search.
		return s.runLocal(ctx, tasks, out)
	}
	defer s.c.abandon(b)

	tick := time.NewTicker(s.c.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-b.done:
			return b.err
		case <-tick.C:
			orphans := s.c.reclaimOrphans(b)
			if len(orphans) == 0 {
				continue
			}
			var local []farm.Assigned
			for _, sh := range orphans {
				local = append(local, sh.tasks...)
			}
			if err := s.pool.RunAssigned(ctx, local, out); err != nil {
				return err
			}
			s.c.completeLocal(orphans, int64(len(local)))
		}
	}
}

func (s *Session) runLocal(ctx context.Context, tasks []farm.Assigned,
	out []float64) error {
	if s.c != nil {
		s.c.met.localBatches.Add(1)
		s.c.met.localTasks.Add(int64(len(tasks)))
	}
	return s.pool.RunAssigned(ctx, tasks, out)
}
