package fleet

import "sync/atomic"

// metrics holds the fleet-wide counters Snapshot exports. Everything is
// atomic so hot paths can bump them without extending lock scopes.
type metrics struct {
	joins          atomic.Int64
	leaseExpiries  atomic.Int64
	workerExpiries atomic.Int64
	requeues       atomic.Int64
	lateReports    atomic.Int64
	evalFailures   atomic.Int64
	remoteBatches  atomic.Int64
	localBatches   atomic.Int64
	remoteTasks    atomic.Int64
	localTasks     atomic.Int64
	// contextsElided counts leases shipped digest-only because the worker
	// already held the context's evaluator.
	contextsElided atomic.Int64
}
