package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dstress/internal/farm"
	"dstress/internal/ga"
	"dstress/internal/xrand"
)

// testEval is the deterministic fake measurement every test worker runs:
// fitness depends on the chromosome and on its assigned noise stream, so any
// mis-shipped RNG state or mis-indexed result breaks bit-identity loudly.
func testEval(g ga.Genome, rng *xrand.Rand) (float64, error) {
	ig := g.(*ga.IntGenome)
	sum := 0
	for _, v := range ig.Vals {
		sum += v
	}
	return float64(sum) + rng.Float64(), nil
}

func testFactory(int) (farm.EvalFunc, error) { return testEval, nil }

// testBuild is the worker-side BuildFunc: same evaluator, built from the
// opaque context exactly once per digest.
func testBuild(json.RawMessage) (farm.EvalFunc, error) { return testEval, nil }

func testGenomes(t *testing.T, n int) []ga.Genome {
	t.Helper()
	gs := make([]ga.Genome, n)
	for i := range gs {
		g, err := ga.NewIntGenome([]int{i, 2 * i, 7}, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	return gs
}

func testPool(t *testing.T, seed uint64) *farm.Pool {
	t.Helper()
	pool, err := farm.NewPool(2, xrand.New(seed), testFactory)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// reference evaluates the batch on a plain local pool with the same seed —
// the value every fleet configuration must reproduce bit-identically.
func reference(t *testing.T, seed uint64, gs []ga.Genome) []float64 {
	t.Helper()
	want, err := testPool(t, seed).EvaluateBatch(context.Background(), gs)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func fastConfig() Config {
	return Config{
		LeaseTTL:   2 * time.Second,
		WorkerTTL:  time.Second,
		SweepEvery: 5 * time.Millisecond,
	}
}

// startWorkers runs n real Worker clients against url and returns a stop
// function that waits them out.
func startWorkers(t *testing.T, url string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := NewWorker(url, fmt.Sprintf("tw%d", i), testBuild,
			WithLeaseWait(200*time.Millisecond),
			WithBackoff(5*time.Millisecond, 50*time.Millisecond, 2))
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

func serve(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	c.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestZeroWorkersFallsBackLocal: with nobody registered the session is the
// pool, bit for bit, and the fallback is counted as local work.
func TestZeroWorkersFallsBackLocal(t *testing.T) {
	const seed = 41
	gs := testGenomes(t, 9)
	want := reference(t, seed, gs)

	c := NewCoordinator(fastConfig())
	sess := c.NewSession(json.RawMessage(`{}`), testPool(t, seed))
	got, err := sess.EvaluateBatch(context.Background(), gs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback diverged from local pool:\n got %v\nwant %v", got, want)
	}
	st := c.Snapshot()
	if st.LocalBatches == 0 || st.LocalTasks == 0 {
		t.Fatalf("local fallback not counted: %+v", st)
	}
	if st.RemoteBatches != 0 {
		t.Fatalf("no remote batch should exist: %+v", st)
	}
}

// TestBitIdenticalAcrossWorkerCounts is the fleet's core invariant: 1, 2 and
// 4 remote workers all reproduce the local pool's fitness vector exactly.
func TestBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const seed = 2020
	gs := testGenomes(t, 12)
	want := reference(t, seed, gs)

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewCoordinator(fastConfig())
			ts := serve(t, c)
			stop := startWorkers(t, ts.URL, workers)
			defer stop()
			waitLive(t, c, workers)

			sess := c.NewSession(json.RawMessage(`{"env":1}`), testPool(t, seed))
			got, err := sess.EvaluateBatch(context.Background(), gs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%d workers diverged from local pool:\n got %v\nwant %v",
					workers, got, want)
			}
			if st := c.Snapshot(); st.RemoteTasks == 0 {
				t.Fatalf("no tasks ran remotely: %+v", st)
			}
		})
	}
}

func waitLive(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers joined", c.LiveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadWorkerShardRequeues kills a leased shard's holder (it simply never
// reports and stops heartbeating) and checks the shard re-queues onto the
// surviving real worker with the result still bit-identical.
func TestDeadWorkerShardRequeues(t *testing.T) {
	const seed = 7
	gs := testGenomes(t, 8)
	want := reference(t, seed, gs)

	c := NewCoordinator(Config{
		LeaseTTL:   300 * time.Millisecond,
		WorkerTTL:  150 * time.Millisecond,
		SweepEvery: 5 * time.Millisecond,
	})

	// The zombie joins and leases directly through the coordinator API, then
	// vanishes without reporting.
	zombieID, _ := c.Join("zombie")

	sess := c.NewSession(json.RawMessage(`{}`), testPool(t, seed))
	var (
		got     []float64
		evalErr error
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		got, evalErr = sess.EvaluateBatch(context.Background(), gs)
	}()

	// Steal a shard, never report it.
	leaseCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sh, err := c.Lease(leaseCtx, zombieID, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sh == nil {
		t.Fatal("zombie got no shard to sit on")
	}

	// A live worker appears and absorbs everything, including the re-queued
	// zombie shard once its lease (or the zombie's liveness) expires.
	ts := serve(t, c)
	stop := startWorkers(t, ts.URL, 1)
	defer stop()

	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("batch never completed after worker death")
	}
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("re-queued shard diverged:\n got %v\nwant %v", got, want)
	}
	st := c.Snapshot()
	if st.Requeues == 0 {
		t.Fatalf("expected a re-queue after the zombie died: %+v", st)
	}
}

// TestWorkerRejoinsAfterCoordinatorRestart swaps in a fresh coordinator —
// everything it knew is gone, as after a crash — and checks the worker's 404
// triggers a re-join and the new coordinator's batches still complete.
func TestWorkerRejoinsAfterCoordinatorRestart(t *testing.T) {
	const seed = 99
	gs := testGenomes(t, 6)
	want := reference(t, seed, gs)

	var cur atomic.Pointer[http.ServeMux]
	c1 := NewCoordinator(fastConfig())
	mux1 := http.NewServeMux()
	c1.Mount(mux1)
	cur.Store(mux1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	}))
	defer ts.Close()

	stop := startWorkers(t, ts.URL, 1)
	defer stop()
	waitLive(t, c1, 1)

	// "Restart": a brand-new coordinator behind the same address.
	c2 := NewCoordinator(fastConfig())
	mux2 := http.NewServeMux()
	c2.Mount(mux2)
	cur.Store(mux2)

	waitLive(t, c2, 1) // the worker re-joined on its own

	sess := c2.NewSession(json.RawMessage(`{}`), testPool(t, seed))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got, err := sess.EvaluateBatch(ctx, gs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restart batch diverged:\n got %v\nwant %v", got, want)
	}
}

// TestWorkerSurvivesDownCoordinator points a worker at a dead address: it
// must keep retrying (counting its retries) without ever returning until the
// context ends, and its backoff must respect the configured ceiling.
func TestWorkerSurvivesDownCoordinator(t *testing.T) {
	w := NewWorker("http://127.0.0.1:1", "lost", testBuild,
		WithBackoff(time.Millisecond, 10*time.Millisecond, 2))
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	err := w.Run(ctx)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("worker returned %v before its context ended", err)
	}
	// With a 10ms ceiling a 400ms window must fit well over a dozen
	// attempts; a broken (uncapped) ramp would manage only a handful.
	if w.Retries() < 10 {
		t.Fatalf("only %d retries in 400ms with a 10ms backoff ceiling", w.Retries())
	}
}

// TestBackoffCeiling checks the ramp and its cap directly.
func TestBackoffCeiling(t *testing.T) {
	bo := NewBackoff(100*time.Millisecond, time.Second, 2, xrand.New(1))
	max := time.Duration(0)
	for i := 0; i < 20; i++ {
		d := bo.Next()
		if d > time.Second {
			t.Fatalf("delay %v exceeds the 1s ceiling", d)
		}
		if d > max {
			max = d
		}
	}
	// After the ramp saturates, delays must actually live near the ceiling
	// (within the jitter's lower half), not collapse.
	if max < 500*time.Millisecond {
		t.Fatalf("max delay %v never approached the ceiling", max)
	}
	bo.Reset()
	if d := bo.Next(); d > 100*time.Millisecond {
		t.Fatalf("post-reset delay %v exceeds the 100ms floor", d)
	}
}

// TestEvalErrorFailsBatch: an evaluation failure on a worker fails the batch
// (exactly as a local worker error would), rather than hanging the session.
func TestEvalErrorFailsBatch(t *testing.T) {
	const seed = 3
	gs := testGenomes(t, 4)

	c := NewCoordinator(fastConfig())
	ts := serve(t, c)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(ts.URL, "bad", func(json.RawMessage) (farm.EvalFunc, error) {
		return func(ga.Genome, *xrand.Rand) (float64, error) {
			return 0, fmt.Errorf("synthetic meltdown")
		}, nil
	}, WithLeaseWait(100*time.Millisecond),
		WithBackoff(5*time.Millisecond, 50*time.Millisecond, 2))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = w.Run(ctx) }()
	defer wg.Wait()
	defer cancel()
	waitLive(t, c, 1)

	sess := c.NewSession(json.RawMessage(`{}`), testPool(t, seed))
	bctx, bcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer bcancel()
	if _, err := sess.EvaluateBatch(bctx, gs); err == nil {
		t.Fatal("evaluation failure on the worker did not fail the batch")
	}
	if st := c.Snapshot(); st.EvalFailures == 0 {
		t.Fatalf("evaluation failure not counted: %+v", st)
	}
}

// TestReportUnknownWorker: results from an unregistered id are absorbed but
// the worker is told to re-join.
func TestReportUnknownWorker(t *testing.T) {
	c := NewCoordinator(fastConfig())
	err := c.Report("w999", "s1", nil, "")
	if err == nil {
		t.Fatal("unknown worker's report returned nil")
	}
}

// testBatchBuild is the worker-side BatchBuildFunc: the same measurement as
// testBuild plus a chunked companion that evaluates its tasks in one pass —
// identical values, so chunked workers must be invisible in the results.
func testBatchBuild(json.RawMessage) (farm.EvalFunc, farm.ChunkEvalFunc, error) {
	chunk := func(tasks []farm.Assigned, out []float64) error {
		for _, tk := range tasks {
			v, err := testEval(tk.G, tk.RNG)
			if err != nil {
				return err
			}
			out[tk.Idx] = v
		}
		return nil
	}
	return testEval, chunk, nil
}

// TestBatchDetV2ChunkedWorkersBitIdentical: workers evaluating whole shards
// through their chunked evaluator reproduce the local pool's fitness vector
// exactly, at 1 and 2 nodes.
func TestBatchDetV2ChunkedWorkersBitIdentical(t *testing.T) {
	const seed = 909
	gs := testGenomes(t, 9)
	want := reference(t, seed, gs)

	for _, workers := range []int{1, 2} {
		c := NewCoordinator(fastConfig())
		ts := serve(t, c)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			w := NewWorker(ts.URL, fmt.Sprintf("bw%d", i), testBuild,
				WithBatchBuild(testBatchBuild),
				WithLeaseWait(200*time.Millisecond),
				WithBackoff(5*time.Millisecond, 50*time.Millisecond, 2))
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = w.Run(ctx)
			}()
		}
		waitLive(t, c, workers)

		sess := c.NewSession(json.RawMessage(`{"env":9}`), testPool(t, seed))
		got, err := sess.EvaluateBatch(context.Background(), gs)
		cancel()
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d chunked workers diverged from local pool:\n got %v\nwant %v",
				workers, got, want)
		}
		if st := c.Snapshot(); st.RemoteTasks == 0 {
			t.Fatalf("no tasks ran remotely: %+v", st)
		}
	}
}

// TestLeaseContextElision: a worker that advertises a cached context digest
// receives digest-only shards; one that advertises nothing still gets the
// full payload (older workers keep working).
func TestLeaseContextElision(t *testing.T) {
	c := NewCoordinator(fastConfig())
	id, _ := c.Join("tw0")
	evalCtx := json.RawMessage(`{"env":42}`)
	gs := testGenomes(t, 2)

	lease := func(cached ...string) *Shard {
		t.Helper()
		var tasks []farm.Assigned
		for i, g := range gs {
			tasks = append(tasks, farm.Assigned{Idx: i, G: g,
				RNG: xrand.New(uint64(i + 1))})
		}
		b, err := c.submitBatch(evalCtx, tasks, make([]float64, len(tasks)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.abandon(b)
		sh, err := c.Lease(context.Background(), id, time.Second, cached...)
		if err != nil {
			t.Fatal(err)
		}
		if sh == nil {
			t.Fatal("no shard leased")
		}
		if sh.ContextDigest != contextDigest(evalCtx) {
			t.Fatalf("shard digest %q != context digest %q",
				sh.ContextDigest, contextDigest(evalCtx))
		}
		return sh
	}

	if sh := lease(); len(sh.Context) == 0 {
		t.Fatal("first lease (no advertised digests) elided the context")
	}
	if sh := lease("deadbeef"); len(sh.Context) == 0 {
		t.Fatal("lease with a foreign digest elided the context")
	}
	if sh := lease(contextDigest(evalCtx)); len(sh.Context) != 0 {
		t.Fatal("lease with the matching digest still shipped the context")
	}
	if st := c.Snapshot(); st.ContextsElided != 1 {
		t.Fatalf("ContextsElided = %d, want 1", st.ContextsElided)
	}
}

// TestWorkerAdvertisesCachedContexts: a real worker's second shard for the
// same context arrives digest-only end to end over HTTP.
func TestWorkerAdvertisesCachedContexts(t *testing.T) {
	const seed = 313
	gs := testGenomes(t, 6)
	want := reference(t, seed, gs)

	c := NewCoordinator(fastConfig())
	ts := serve(t, c)
	stop := startWorkers(t, ts.URL, 1)
	defer stop()
	waitLive(t, c, 1)

	sess := c.NewSession(json.RawMessage(`{"env":7}`), testPool(t, seed))
	for i := 0; i < 3; i++ {
		got, err := sess.EvaluateBatch(context.Background(), gs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d results, want %d", i, len(got), len(want))
		}
	}
	if st := c.Snapshot(); st.ContextsElided == 0 {
		t.Fatal("repeated same-context shards never shipped digest-only")
	}
}
