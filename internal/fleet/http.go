package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// maxLeaseWait caps a lease long-poll so a coordinator never holds a request
// open indefinitely; workers simply re-poll.
const maxLeaseWait = 25 * time.Second

// Mount registers the fleet protocol under /api/v1/fleet/ on mux, keeping
// the historical unversioned /api/fleet/ spelling as an alias so workers of
// either vintage can join.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	for _, prefix := range []string{"/api/v1/fleet", "/api/fleet"} {
		mux.HandleFunc("POST "+prefix+"/join", c.handleJoin)
		mux.HandleFunc("POST "+prefix+"/heartbeat", c.handleHeartbeat)
		mux.HandleFunc("POST "+prefix+"/lease", c.handleLease)
		mux.HandleFunc("POST "+prefix+"/report", c.handleReport)
	}
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !readJSON(w, r, &req) {
		return
	}
	id, hb := c.Join(req.Name)
	writeJSON(w, http.StatusOK, joinResponse{WorkerID: id, HeartbeatS: hb.Seconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.WorkerID, req.Retries); err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitS * float64(time.Second))
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	sh, err := c.Lease(r.Context(), req.WorkerID, wait, req.Contexts...)
	if err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{Shard: sh})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Report(req.WorkerID, req.ShardID, req.Results, req.Error); err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// workerError maps coordinator errors onto the wire: unknown workers get a
// JSON 404 (the worker's cue to re-join), cancelled long polls a plain
// timeout-ish 200 would mask real errors so they stay 500s.
func workerError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrUnknownWorker) {
		writeError(w, http.StatusNotFound, "unknown_worker", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err)
}

// writeError answers with the daemon-wide error envelope
// {"error":{"code","message"}} so fleet responses parse exactly like every
// other endpoint's.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]map[string]string{"error": {
		"code":    code,
		"message": err.Error(),
	}})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
