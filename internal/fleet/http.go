package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// maxLeaseWait caps a lease long-poll so a coordinator never holds a request
// open indefinitely; workers simply re-poll.
const maxLeaseWait = 25 * time.Second

// Mount registers the fleet protocol under /api/fleet/ on mux.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/fleet/join", c.handleJoin)
	mux.HandleFunc("POST /api/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /api/fleet/lease", c.handleLease)
	mux.HandleFunc("POST /api/fleet/report", c.handleReport)
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !readJSON(w, r, &req) {
		return
	}
	id, hb := c.Join(req.Name)
	writeJSON(w, http.StatusOK, joinResponse{WorkerID: id, HeartbeatS: hb.Seconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.WorkerID, req.Retries); err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitS * float64(time.Second))
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	sh, err := c.Lease(r.Context(), req.WorkerID, wait)
	if err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{Shard: sh})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Report(req.WorkerID, req.ShardID, req.Results, req.Error); err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// workerError maps coordinator errors onto the wire: unknown workers get a
// JSON 404 (the worker's cue to re-join), cancelled long polls a plain
// timeout-ish 200 would mask real errors so they stay 500s.
func workerError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ErrUnknownWorker) {
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
