package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dstress/internal/farm"
	"dstress/internal/ga"
)

// ErrUnknownWorker reports an id the coordinator does not know — never
// joined, expired, or forgotten across a coordinator restart. Workers react
// by re-joining.
var ErrUnknownWorker = errors.New("fleet: unknown worker")

// Config tunes the coordinator's failure detection. The zero value selects
// the defaults.
type Config struct {
	// LeaseTTL is the hard deadline for a leased shard's report. It must
	// exceed the worst-case shard evaluation time: an expired lease is
	// re-queued onto another worker, which duplicates work (never corrupts
	// it — the first report wins, and duplicates produce identical values).
	// Default 90s.
	LeaseTTL time.Duration
	// WorkerTTL deregisters a worker this long after its last heartbeat,
	// lease or report; its leased shards re-queue immediately. Default 20s.
	WorkerTTL time.Duration
	// SweepEvery is how often an active batch checks for expired leases and
	// dead workers. Default 100ms.
	SweepEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 90 * time.Second
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 20 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 100 * time.Millisecond
	}
	return c
}

// shard states.
const (
	shardPending = iota // queued, waiting for a lease
	shardLeased         // held by a worker
	shardLocal          // reclaimed by its session for local evaluation
)

// shard is the coordinator-side view of a leased unit.
type shard struct {
	id       string
	b        *batch
	tasks    []farm.Assigned // local handles: reclaim needs the live RNGs
	wire     []Task          // shipped form, built once at submission
	state    int
	worker   string // current lease holder
	expires  time.Time
	attempts int
}

// batch is one in-flight EvaluateBatch call.
type batch struct {
	evalCtx   json.RawMessage
	ctxDigest string // contextDigest(evalCtx), computed once at submission
	out       []float64
	remaining int // tasks not yet reported
	err       error
	done      chan struct{}
	shards    []*shard
}

func (b *batch) fail(err error) {
	if b.err == nil {
		b.err = err
	}
	b.finish()
}

func (b *batch) finish() {
	select {
	case <-b.done:
	default:
		close(b.done)
	}
}

// workerInfo is one registered worker.
type workerInfo struct {
	id       string
	name     string
	joined   time.Time
	lastSeen time.Time
	tasks    int64 // completed evaluations
	shards   int64 // completed shards
	retries  int64 // transport retries, as self-reported via heartbeat
}

// Coordinator owns the fleet: the worker registry and the shard queue every
// session feeds. One coordinator serves every concurrent search of a daemon;
// sessions are cheap per-search views.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	workers  map[string]*workerInfo
	shards   map[string]*shard
	pending  []*shard // FIFO of shards awaiting a lease
	nextID   int64
	notifyCh chan struct{} // closed-and-replaced when pending work appears

	met metrics
}

// NewCoordinator builds a coordinator with the given failure-detection
// configuration (zero value: defaults).
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:      cfg.withDefaults(),
		workers:  make(map[string]*workerInfo),
		shards:   make(map[string]*shard),
		notifyCh: make(chan struct{}),
	}
}

// signalLocked wakes every lease long-poll parked on the notify channel.
func (c *Coordinator) signalLocked() {
	close(c.notifyCh)
	c.notifyCh = make(chan struct{})
}

// sweepLocked enforces the failure timeouts: workers silent past WorkerTTL
// are deregistered, and leased shards whose holder vanished or whose lease
// expired re-queue. Called lazily from every public entry point, plus the
// session tick while a batch is in flight.
func (c *Coordinator) sweepLocked(now time.Time) {
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.WorkerTTL {
			delete(c.workers, id)
			c.met.workerExpiries.Add(1)
		}
	}
	requeued := false
	for _, sh := range c.shards {
		if sh.state != shardLeased {
			continue
		}
		_, alive := c.workers[sh.worker]
		if alive && now.Before(sh.expires) {
			continue
		}
		if alive {
			c.met.leaseExpiries.Add(1)
		}
		sh.state = shardPending
		sh.worker = ""
		c.pending = append(c.pending, sh)
		c.met.requeues.Add(1)
		requeued = true
	}
	if requeued {
		c.signalLocked()
	}
}

// touchLocked refreshes a worker's liveness, failing for unknown ids.
func (c *Coordinator) touchLocked(workerID string, now time.Time) (*workerInfo, error) {
	w, ok := c.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = now
	return w, nil
}

// Join registers a worker and returns its id and the heartbeat interval the
// coordinator expects.
func (c *Coordinator) Join(name string) (id string, heartbeat time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.sweepLocked(now)
	c.nextID++
	id = fmt.Sprintf("w%d", c.nextID)
	c.workers[id] = &workerInfo{id: id, name: name, joined: now, lastSeen: now}
	c.met.joins.Add(1)
	c.signalLocked() // a parked session tick may now dispatch remotely
	return id, c.cfg.WorkerTTL / 3
}

// Heartbeat refreshes a worker's liveness. retries is the worker's
// cumulative transport-retry counter, recorded for the fleet metrics.
func (c *Coordinator) Heartbeat(workerID string, retries int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.sweepLocked(now)
	w, err := c.touchLocked(workerID, now)
	if err != nil {
		return err
	}
	if retries > w.retries {
		w.retries = retries
	}
	return nil
}

// LiveWorkers returns the number of registered, non-expired workers.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(time.Now())
	return len(c.workers)
}

// Lease hands the worker the oldest pending shard, long-polling up to wait
// for one to appear. A nil shard with a nil error means the wait budget
// passed with no work. cachedDigests lists evaluation contexts the worker
// already holds (see leaseRequest.Contexts): a shard whose context matches
// ships digest-only.
func (c *Coordinator) Lease(ctx context.Context, workerID string,
	wait time.Duration, cachedDigests ...string) (*Shard, error) {
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		now := time.Now()
		c.sweepLocked(now)
		w, err := c.touchLocked(workerID, now)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if len(c.pending) > 0 {
			sh := c.pending[0]
			c.pending = c.pending[1:]
			sh.state = shardLeased
			sh.worker = w.id
			sh.expires = now.Add(c.cfg.LeaseTTL)
			sh.attempts++
			out := &Shard{
				ID:            sh.id,
				ContextDigest: sh.b.ctxDigest,
				Tasks:         sh.wire,
				LeaseS:        c.cfg.LeaseTTL.Seconds(),
			}
			cached := false
			for _, d := range cachedDigests {
				if d == sh.b.ctxDigest {
					cached = true
					break
				}
			}
			if !cached {
				out.Context = sh.b.evalCtx
			} else {
				c.met.contextsElided.Add(1)
			}
			c.mu.Unlock()
			return out, nil
		}
		ch := c.notifyCh
		c.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		// Cap the park so the long poll also re-checks liveness windows.
		park := remaining
		if park > c.cfg.SweepEvery*10 {
			park = c.cfg.SweepEvery * 10
		}
		t := time.NewTimer(park)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// Report delivers a shard's results (or its evaluation failure). Late
// reports — the shard was re-queued, completed elsewhere, or its batch is
// gone — are absorbed: the values of a duplicate evaluation are identical by
// the determinism contract, so there is nothing to reconcile. The returned
// error only ever concerns the worker's registration, so a worker whose
// lease was stolen learns to re-join rather than re-send.
func (c *Coordinator) Report(workerID, shardID string, results []TaskResult,
	evalErr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.sweepLocked(now)
	w, werr := c.touchLocked(workerID, now)

	sh, ok := c.shards[shardID]
	if !ok || sh.state == shardLocal {
		// Gone, withdrawn, or reclaimed by its session for local evaluation:
		// the session owns completion now, so absorb the duplicate.
		c.met.lateReports.Add(1)
		return werr
	}
	if sh.state == shardLeased && sh.worker != workerID {
		// Re-leased to someone else while this report was in flight: accept
		// it anyway (first report wins) and note the duplication.
		c.met.lateReports.Add(1)
	}

	if evalErr != "" {
		c.met.evalFailures.Add(1)
		c.dropBatchLocked(sh.b, fmt.Errorf("fleet: worker %s: %s", workerID, evalErr))
		return werr
	}

	want := make(map[int]bool, len(sh.tasks))
	for _, t := range sh.tasks {
		want[t.Idx] = true
	}
	if len(results) != len(sh.tasks) {
		c.dropBatchLocked(sh.b, fmt.Errorf("fleet: shard %s: %d results for %d tasks",
			shardID, len(results), len(sh.tasks)))
		return werr
	}
	for _, r := range results {
		if !want[r.Index] {
			c.dropBatchLocked(sh.b, fmt.Errorf("fleet: shard %s: unexpected result index %d",
				shardID, r.Index))
			return werr
		}
		sh.b.out[r.Index] = r.Fitness
	}
	c.completeShardLocked(sh)
	c.met.remoteTasks.Add(int64(len(sh.tasks)))
	if w != nil {
		w.tasks += int64(len(sh.tasks))
		w.shards++
	}
	return werr
}

// completeShardLocked retires a finished shard and settles its batch when it
// was the last one out.
func (c *Coordinator) completeShardLocked(sh *shard) {
	delete(c.shards, sh.id)
	c.removePendingLocked(sh)
	sh.b.remaining -= len(sh.tasks)
	if sh.b.remaining <= 0 {
		sh.b.finish()
	}
}

// dropBatchLocked fails a batch and removes all its shards from circulation.
func (c *Coordinator) dropBatchLocked(b *batch, err error) {
	for _, sh := range b.shards {
		delete(c.shards, sh.id)
		c.removePendingLocked(sh)
	}
	b.fail(err)
}

func (c *Coordinator) removePendingLocked(sh *shard) {
	for i, p := range c.pending {
		if p == sh {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// submitBatch shards the tasks across the current live workers and queues
// them. Caller guarantees len(tasks) > 0 and at least one live worker was
// seen; the shard layout only affects scheduling, never values.
func (c *Coordinator) submitBatch(evalCtx json.RawMessage, tasks []farm.Assigned,
	out []float64) (*batch, error) {
	wire := make([]Task, len(tasks))
	for i, t := range tasks {
		rec, err := ga.EncodeGenome(t.G)
		if err != nil {
			return nil, err
		}
		wire[i] = Task{Index: t.Idx, Genome: rec, RNG: t.RNG.State()}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(time.Now())
	b := &batch{
		evalCtx:   evalCtx,
		ctxDigest: contextDigest(evalCtx),
		out:       out,
		remaining: len(tasks),
		done:      make(chan struct{}),
	}
	nshards := len(c.workers)
	if nshards < 1 {
		nshards = 1
	}
	if nshards > len(tasks) {
		nshards = len(tasks)
	}
	for i := 0; i < nshards; i++ {
		lo, hi := i*len(tasks)/nshards, (i+1)*len(tasks)/nshards
		c.nextID++
		sh := &shard{
			id:    fmt.Sprintf("s%d", c.nextID),
			b:     b,
			tasks: tasks[lo:hi],
			wire:  wire[lo:hi],
			state: shardPending,
		}
		b.shards = append(b.shards, sh)
		c.shards[sh.id] = sh
		c.pending = append(c.pending, sh)
	}
	c.met.remoteBatches.Add(1)
	c.signalLocked()
	return b, nil
}

// reclaimOrphans pulls the batch's pending shards for local evaluation when
// no live worker remains to lease them. Leased shards are left alone: their
// holders are, by definition of the sweep, still alive.
func (c *Coordinator) reclaimOrphans(b *batch) []*shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(time.Now())
	if len(c.workers) > 0 {
		return nil
	}
	var orphans []*shard
	for _, sh := range b.shards {
		if sh.state == shardPending {
			sh.state = shardLocal
			c.removePendingLocked(sh)
			orphans = append(orphans, sh)
		}
	}
	return orphans
}

// completeLocal retires shards the session evaluated itself.
func (c *Coordinator) completeLocal(shards []*shard, tasks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range shards {
		c.completeShardLocked(sh)
	}
	c.met.localTasks.Add(tasks)
}

// abandon withdraws a batch's remaining shards (context cancellation, local
// fallback failure). Idempotent; late worker reports for withdrawn shards
// are absorbed as unknown.
func (c *Coordinator) abandon(b *batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range b.shards {
		delete(c.shards, sh.id)
		c.removePendingLocked(sh)
	}
}

// WorkerStatus is one registered worker's point-in-time view.
type WorkerStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Tasks int64  `json:"tasks_done"`
	// Shards is the number of completed (reported) shards.
	Shards  int64 `json:"shards_done"`
	Retries int64 `json:"transport_retries"`
	// TasksPerSec is the worker's completed-evaluation rate since it joined.
	TasksPerSec float64 `json:"tasks_per_sec"`
	LastSeenS   float64 `json:"last_seen_s"`
}

// Status aggregates the fleet counters for /metrics.
type Status struct {
	Workers []WorkerStatus `json:"workers"`

	Joins          int64 `json:"joins"`
	LeaseExpiries  int64 `json:"lease_expiries"`
	WorkerExpiries int64 `json:"worker_expiries"`
	Requeues       int64 `json:"requeues"`
	LateReports    int64 `json:"late_reports"`
	EvalFailures   int64 `json:"eval_failures"`

	RemoteBatches int64 `json:"remote_batches"`
	LocalBatches  int64 `json:"local_batches"`
	RemoteTasks   int64 `json:"remote_tasks"`
	LocalTasks    int64 `json:"local_tasks"`
	// ContextsElided counts digest-only leases (worker already held the
	// evaluation context).
	ContextsElided int64 `json:"contexts_elided"`

	PendingShards int `json:"pending_shards"`
	LeasedShards  int `json:"leased_shards"`
}

// Snapshot reads the fleet state.
func (c *Coordinator) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.sweepLocked(now)
	st := Status{
		Joins:          c.met.joins.Load(),
		LeaseExpiries:  c.met.leaseExpiries.Load(),
		WorkerExpiries: c.met.workerExpiries.Load(),
		Requeues:       c.met.requeues.Load(),
		LateReports:    c.met.lateReports.Load(),
		EvalFailures:   c.met.evalFailures.Load(),
		RemoteBatches:  c.met.remoteBatches.Load(),
		LocalBatches:   c.met.localBatches.Load(),
		RemoteTasks:    c.met.remoteTasks.Load(),
		LocalTasks:     c.met.localTasks.Load(),
		ContextsElided: c.met.contextsElided.Load(),
	}
	for _, sh := range c.shards {
		switch sh.state {
		case shardPending:
			st.PendingShards++
		case shardLeased:
			st.LeasedShards++
		}
	}
	for _, w := range c.workers {
		ws := WorkerStatus{
			ID:        w.id,
			Name:      w.name,
			Tasks:     w.tasks,
			Shards:    w.shards,
			Retries:   w.retries,
			LastSeenS: now.Sub(w.lastSeen).Seconds(),
		}
		if up := now.Sub(w.joined).Seconds(); up > 0 {
			ws.TasksPerSec = float64(w.tasks) / up
		}
		st.Workers = append(st.Workers, ws)
	}
	sort.Slice(st.Workers, func(i, k int) bool {
		return st.Workers[i].ID < st.Workers[k].ID
	})
	return st
}
