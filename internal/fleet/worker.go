package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dstress/internal/farm"
	"dstress/internal/ga"
	"dstress/internal/xrand"
)

// BuildFunc constructs an evaluator for a shard's opaque evaluation context.
// It must build the same machine a coordinator-side farm worker would build
// for that context — the determinism contract rests on it.
type BuildFunc func(evalCtx json.RawMessage) (farm.EvalFunc, error)

// BatchBuildFunc constructs both evaluators for an evaluation context over
// one shared environment: the per-task evaluator and its chunked companion,
// which evaluates a whole shard in one batched pass (see farm.ChunkEvalFunc).
// A nil chunk evaluator (with nil error) means the context's determinism
// contract does not support batching; the worker evaluates that context's
// shards per task. The chunked pass must be bit-identical to the per-task
// one — core.NewWorkerEvaluators provides exactly this pair.
type BatchBuildFunc func(evalCtx json.RawMessage) (farm.EvalFunc, farm.ChunkEvalFunc, error)

// workerEval is one context's cached evaluator pair.
type workerEval struct {
	single farm.EvalFunc
	chunk  farm.ChunkEvalFunc // nil: evaluate per task
}

// Worker is the remote side of the fleet: it joins a coordinator, heartbeats,
// pulls leased shards, evaluates them and reports results, retrying transport
// errors with capped exponential backoff and re-joining when the coordinator
// forgets it (restart, liveness expiry).
type Worker struct {
	base       string
	name       string
	authToken  string
	client     *http.Client
	build      BuildFunc
	batchBuild BatchBuildFunc
	logf       func(string, ...any)
	leaseWait  time.Duration
	boMin      time.Duration
	boMax      time.Duration
	boFactor   float64
	rng        *xrand.Rand
	retries    atomic.Int64

	mu      sync.Mutex
	evals   map[string]workerEval // context digest -> cached evaluator pair
	digests []string              // sorted cache keys, advertised on lease
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithHTTPClient replaces the transport (tests inject short timeouts).
func WithHTTPClient(c *http.Client) WorkerOption {
	return func(w *Worker) { w.client = c }
}

// WithLogf routes the worker's progress lines.
func WithLogf(f func(string, ...any)) WorkerOption {
	return func(w *Worker) { w.logf = f }
}

// WithLeaseWait sets the lease long-poll budget.
func WithLeaseWait(d time.Duration) WorkerOption {
	return func(w *Worker) { w.leaseWait = d }
}

// WithBackoff sets the transport-retry ramp.
func WithBackoff(min, max time.Duration, factor float64) WorkerOption {
	return func(w *Worker) { w.boMin, w.boMax, w.boFactor = min, max, factor }
}

// WithAuthToken sends a bearer token with every protocol request — required
// when the coordinator runs with auth enabled, a no-op otherwise.
func WithAuthToken(token string) WorkerOption {
	return func(w *Worker) { w.authToken = token }
}

// WithBatchBuild installs the paired builder: contexts are built once and
// shards whose contract supports it are evaluated in one chunked pass
// instead of task by task. Takes precedence over the plain BuildFunc.
func WithBatchBuild(f BatchBuildFunc) WorkerOption {
	return func(w *Worker) { w.batchBuild = f }
}

// NewWorker builds a worker client for the coordinator at base (e.g.
// "http://host:9753"). build turns shard contexts into evaluators.
func NewWorker(base, name string, build BuildFunc, opts ...WorkerOption) *Worker {
	w := &Worker{
		base:      base,
		name:      name,
		client:    &http.Client{},
		build:     build,
		logf:      func(string, ...any) {},
		leaseWait: 20 * time.Second,
		rng:       xrand.New(uint64(time.Now().UnixNano())),
		evals:     make(map[string]workerEval),
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Retries returns the cumulative transport-retry count (also reported to the
// coordinator with every heartbeat).
func (w *Worker) Retries() int64 { return w.retries.Load() }

// Run joins the coordinator and serves leases until the context ends. It only
// returns the context's error: every transport failure is retried and every
// registration loss re-joined.
func (w *Worker) Run(ctx context.Context) error {
	for {
		id, hbEvery, err := w.join(ctx)
		if err != nil {
			return err
		}
		w.logf("fleet worker %s: joined %s as %s", w.name, w.base, id)

		hbCtx, stopHB := context.WithCancel(ctx)
		var hbWG sync.WaitGroup
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			w.heartbeatLoop(hbCtx, id, hbEvery)
		}()
		err = w.leaseLoop(ctx, id)
		stopHB()
		hbWG.Wait()
		if errors.Is(err, ErrUnknownWorker) {
			w.logf("fleet worker %s: registration lost, re-joining", id)
			continue
		}
		return err
	}
}

// join registers with the coordinator, retrying with backoff until it
// succeeds or the context ends.
func (w *Worker) join(ctx context.Context) (string, time.Duration, error) {
	bo := w.backoff()
	for {
		if err := ctx.Err(); err != nil {
			return "", 0, err
		}
		var resp joinResponse
		err := w.post(ctx, "join", joinRequest{Name: w.name}, &resp)
		if err == nil {
			hb := time.Duration(resp.HeartbeatS * float64(time.Second))
			if hb <= 0 {
				hb = 5 * time.Second
			}
			return resp.WorkerID, hb, nil
		}
		if ctx.Err() != nil {
			return "", 0, ctx.Err()
		}
		w.retries.Add(1)
		w.logf("fleet worker %s: join: %v", w.name, err)
		if err := bo.Sleep(ctx); err != nil {
			return "", 0, err
		}
	}
}

func (w *Worker) heartbeatLoop(ctx context.Context, id string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		req := heartbeatRequest{WorkerID: id, Retries: w.retries.Load()}
		if err := w.post(ctx, "heartbeat", req, nil); err != nil && ctx.Err() == nil {
			// Registration loss surfaces through the lease loop; transport
			// blips just count.
			if !errors.Is(err, ErrUnknownWorker) {
				w.retries.Add(1)
			}
		}
	}
}

// leaseLoop long-polls for shards, evaluates and reports. Returns
// ErrUnknownWorker when the coordinator forgot this registration (caller
// re-joins), otherwise only the context's error.
func (w *Worker) leaseLoop(ctx context.Context, id string) error {
	bo := w.backoff()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp leaseResponse
		req := leaseRequest{WorkerID: id, WaitS: w.leaseWait.Seconds(),
			Contexts: w.cachedDigests()}
		if err := w.post(ctx, "lease", req, &resp); err != nil {
			if errors.Is(err, ErrUnknownWorker) {
				return err
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.retries.Add(1)
			if err := bo.Sleep(ctx); err != nil {
				return err
			}
			continue
		}
		bo.Reset()
		if resp.Shard == nil {
			continue // wait budget passed with no work; poll again
		}
		results, evalErr := w.evaluate(resp.Shard)
		rep := reportRequest{WorkerID: id, ShardID: resp.Shard.ID, Results: results}
		if evalErr != nil {
			rep.Results, rep.Error = nil, evalErr.Error()
			w.logf("fleet worker %s: shard %s: %v", id, resp.Shard.ID, evalErr)
		}
		if err := w.report(ctx, bo, rep); err != nil {
			return err
		}
	}
}

// report delivers results, retrying transport errors: an evaluated shard is
// too expensive to drop over a network blip.
func (w *Worker) report(ctx context.Context, bo *Backoff, rep reportRequest) error {
	for {
		err := w.post(ctx, "report", rep, nil)
		if err == nil {
			bo.Reset()
			return nil
		}
		if errors.Is(err, ErrUnknownWorker) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.retries.Add(1)
		if err := bo.Sleep(ctx); err != nil {
			return err
		}
	}
}

// evaluate runs a shard's tasks on the context's evaluator — in one chunked
// pass when the context supports batching, task by task otherwise. Any
// failure — undecodable genome, bad RNG state, evaluation error or panic —
// is reported as the shard's evaluation error.
func (w *Worker) evaluate(sh *Shard) ([]TaskResult, error) {
	ev, err := w.evaluator(sh)
	if err != nil {
		return nil, err
	}
	tasks := make([]farm.Assigned, len(sh.Tasks))
	for i, t := range sh.Tasks {
		g, err := ga.DecodeGenome(t.Genome)
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", t.Index, err)
		}
		rng, err := xrand.FromState(t.RNG)
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", t.Index, err)
		}
		tasks[i] = farm.Assigned{Idx: i, G: g, RNG: rng}
	}
	out := make([]float64, len(tasks))
	if ev.chunk != nil {
		if err := safeWorkerChunk(ev.chunk, tasks, out); err != nil {
			return nil, fmt.Errorf("shard chunk: %w", err)
		}
	} else {
		for i, t := range tasks {
			v, err := safeWorkerEval(ev.single, t.G, t.RNG)
			if err != nil {
				return nil, fmt.Errorf("task %d: %w", sh.Tasks[i].Index, err)
			}
			out[i] = v
		}
	}
	results := make([]TaskResult, len(sh.Tasks))
	for i, t := range sh.Tasks {
		results[i] = TaskResult{Index: t.Index, Fitness: out[i]}
	}
	return results, nil
}

func safeWorkerEval(ev farm.EvalFunc, g ga.Genome, rng *xrand.Rand) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("evaluation panic: %v", r)
		}
	}()
	return ev(g, rng)
}

func safeWorkerChunk(ev farm.ChunkEvalFunc, tasks []farm.Assigned,
	out []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("evaluation panic: %v", r)
		}
	}()
	return ev(tasks, out)
}

// evaluator builds (or reuses) the evaluator pair for a shard's context,
// keyed by the context digest: a daemon serving several concurrent searches
// ships several contexts, and rebuilding the simulated server per shard
// would dominate the shard itself. A digest-only shard (context elided
// because this worker advertised it) must hit the cache; a coordinator only
// elides what the worker claimed to hold.
func (w *Worker) evaluator(sh *Shard) (workerEval, error) {
	key := sh.ContextDigest
	if key == "" {
		// Pre-digest coordinator: ships the full context every time.
		key = contextDigest(sh.Context)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if ev, ok := w.evals[key]; ok {
		return ev, nil
	}
	if len(sh.Context) == 0 {
		return workerEval{}, fmt.Errorf(
			"shard %s: context %.12s… elided but not cached", sh.ID, key)
	}
	var ev workerEval
	var err error
	if w.batchBuild != nil {
		ev.single, ev.chunk, err = w.batchBuild(sh.Context)
	} else {
		ev.single, err = w.build(sh.Context)
	}
	if err != nil {
		return workerEval{}, err
	}
	if ev.single == nil {
		return workerEval{}, fmt.Errorf("shard %s: builder returned no evaluator", sh.ID)
	}
	w.evals[key] = ev
	w.digests = append(w.digests, key)
	sort.Strings(w.digests)
	return ev, nil
}

// cachedDigests snapshots the context digests this worker holds, advertised
// with every lease so the coordinator can ship digest-only shards.
func (w *Worker) cachedDigests() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.digests) == 0 {
		return nil
	}
	out := make([]string, len(w.digests))
	copy(out, w.digests)
	return out
}

func (w *Worker) backoff() *Backoff {
	return NewBackoff(w.boMin, w.boMax, w.boFactor, w.rng.Split())
}

// post sends one protocol request. A 404 maps to ErrUnknownWorker; any other
// failure is a retryable transport error.
func (w *Worker) post(ctx context.Context, verb string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.base+"/api/v1/fleet/"+verb, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.authToken != "" {
		req.Header.Set("Authorization", "Bearer "+w.authToken)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: %w", verb, ErrUnknownWorker)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: %s: http %d: %s", verb, resp.StatusCode,
			bytes.TrimSpace(b))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}
