# DStress reproduction — common entry points.

GO ?= go

.PHONY: all build test test-short check detv2-test islands-test store-test batch-test service-test lint resume-test fleet-test bench bench-json experiments experiments-full fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Static checks + the race detector over the whole tree, with a quick
# short-mode -race pass over the concurrency-heavy packages first so their
# failures surface before the long campaign tests run, a focused
# checkpoint/resume pass over the durability-critical packages, and one
# iteration of each dram micro-benchmark under -race so the evaluation fast
# path stays race-clean against farm workers sharing cloned servers. The
# full pass needs an explicit -timeout: the campaign test runs ~90s
# natively, and the race detector's slowdown pushes it past go test's 600s
# default.
check:
	$(GO) vet ./...
	$(GO) test -race -short ./internal/farm ./internal/fleet ./internal/ga ./internal/virusdb
	$(GO) test -race -run 'Checkpoint|Resume|Journal|Snapshot' \
		./internal/checkpoint ./internal/ga ./internal/core ./internal/farm
	$(GO) test -race -run '^$$' -bench . -benchtime 1x ./internal/dram
	$(MAKE) detv2-test
	$(MAKE) islands-test
	$(MAKE) store-test
	$(MAKE) batch-test
	$(MAKE) service-test
	$(MAKE) lint
	$(GO) test -race -timeout 30m ./...

# The determinism-v2 differential matrix under the race detector: stream
# purity and key independence (xrand), kernel-vs-reference bit-identity and
# order independence (dram), serial/farm-1-2-4-8/kill-and-resume agreement
# (core) and fleet 0/1/2/4-node agreement (dstressd). The v1 suites pin the
# old contract separately and must not move.
detv2-test:
	$(GO) test -race -run 'DetV2' \
		./internal/xrand ./internal/dram ./internal/core ./cmd/dstressd

# Island-model bit-identity matrix: stepper determinism and snapshot resume
# (internal/ga, internal/islands), the core kill-and-resume matrix at
# 1/2/4 islands × 1/8 farm workers under both determinism contracts with
# surrogate screening on and off (internal/core), and the daemon surface —
# fleet 0/2-node agreement, island job submission, /api/v1 vs legacy
# /metrics alias consistency (cmd/dstressd). The suite then repeats once
# under the race detector: island evaluation fans out one goroutine per
# island over shared farm pools.
islands-test:
	$(GO) test -run 'Islands' \
		./internal/ga ./internal/islands ./internal/core ./cmd/dstressd
	$(GO) test -race -count 1 -run 'Islands' \
		./internal/ga ./internal/islands ./internal/core ./cmd/dstressd

# The persistence crash matrix: subprocess SIGKILL mid-append, mid-rotation
# and mid-compaction of the segmented store (every acknowledged record must
# replay after a strict reopen), the staged crash windows of the
# legacy-file migration (virusdb JSON array, farm whole-doc journal), the
# salvage/validation regression suites, and one -race iteration of the
# store package: the store is shared by concurrent campaign jobs.
store-test:
	$(GO) test -run 'Seglog|Migrat|Torn|Corrupt|Compact|Manifest|Salvage|Journal' \
		./internal/seglog ./internal/virusdb ./internal/farm
	$(GO) test -race -count 1 ./internal/seglog

# The population-batched evaluation differential matrix: batch-vs-serial
# bit-identity at the kernel (internal/dram, including the v1 rejection and
# steady-state allocation budget), chunked-vs-per-task farm dispatch at
# 1/2/4/8 workers plus a whole chunked search against a per-task reference
# (internal/core), chunked fleet workers and context-digest elision
# (internal/fleet), and fleet 0/1/2-node agreement at the daemon surface
# (cmd/dstressd). The kill-and-resume pass re-runs the v2 resume matrix,
# which now checkpoints and resumes through the chunked path, then one
# -race iteration covers the concurrent chunk dispatch.
batch-test:
	$(GO) test -run 'Batch|LeaseContext|AdvertisesCachedContexts' \
		./internal/dram ./internal/core ./internal/farm ./internal/fleet ./cmd/dstressd
	$(GO) test -run 'DetV2Resume' ./internal/core
	$(GO) test -race -count 1 -run 'Batch|LeaseContext|AdvertisesCachedContexts' \
		./internal/dram ./internal/core ./internal/fleet

# The multi-tenant service matrix: bearer auth (401 envelope, open debug
# surface, fleet worker pass-through), per-tenant quotas (429 + accounting),
# SSE progress streaming, admission-queue ordering (priority bands, FIFO,
# anti-starvation, cancel-from-queue), the scheduler-leak regressions
# (context-per-timed-job, bounded terminal retention, Drain timer), and
# journal-preserved admission identity across a restart — then one -race
# iteration of the same surface, since admission and finish are the
# scheduler's hottest lock paths.
service-test:
	$(GO) test -run 'TestScheduler|TestAuth|TestQuota|TestPriority|TestSSE|TestEvicted|TestFleetWorkerAuth' \
		./internal/farm ./cmd/dstressd
	$(GO) test -race -count 1 \
		-run 'TestScheduler|TestAuth|TestQuota|TestPriority|TestSSE|TestEvicted|TestFleetWorkerAuth' \
		./internal/farm ./cmd/dstressd

# Static analysis over the island/surrogate/persistence/batch-evaluation
# subsystems: vet, gofmt cleanliness, and staticcheck when one is already on
# PATH (the build never installs tools). The dram and farm packages are
# gofmt-checked by explicit file list: their kernel files carry intentional
# manual alignment that predates this check.
LINT_PKGS  = ./internal/islands ./internal/predict ./internal/seglog \
	./internal/fleet ./internal/ga ./cmd/benchjson ./cmd/loadgen
LINT_DIRS  = internal/islands internal/predict internal/seglog \
	internal/fleet internal/ga cmd/benchjson cmd/loadgen
LINT_FILES = internal/dram/batch.go internal/dram/metrics.go \
	internal/farm/pool.go internal/farm/metrics.go internal/farm/scheduler.go \
	internal/farm/tenant.go internal/farm/journal.go internal/core/parallel.go

lint:
	$(GO) vet $(LINT_PKGS)
	@out=$$(gofmt -l $(LINT_DIRS) $(LINT_FILES)); \
	if [ -n "$$out" ]; then echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck $(LINT_PKGS); \
	else echo "lint: staticcheck not on PATH; vet+gofmt only"; fi

# Kill-and-resume integration: SIGKILL a live dstressd mid-search, restart
# it over the same journal, and require the re-queued job to finish with a
# result bit-identical to an uninterrupted run (plus the in-process
# kill-at-generation-N resume tests at 1 and 8 workers).
resume-test:
	$(GO) test -v -run 'TestDaemonKillResumeIntegration' ./cmd/dstressd
	$(GO) test -run 'TestRunSearchFrom|TestResume' ./internal/core ./internal/ga

# Distributed-fabric integration: a coordinator daemon plus two real worker
# subprocesses, one SIGKILLed mid-job (its shard must re-queue onto the
# survivor), and the in-process 1/2/4-worker fleet — every configuration
# required to finish bit-identical to the purely local farm.Pool run.
fleet-test:
	$(GO) test -v -run 'TestFleetKillWorkerIntegration' ./cmd/dstressd
	$(GO) test -run 'TestFleetEndToEndBitIdentical' ./cmd/dstressd
	$(GO) test -race ./internal/fleet

# The benchmark story: the top-level figure benchmarks (one quick-scale
# regeneration each) plus the evaluation-path micro-benchmarks (dram fast
# path vs reference, farm speedup). bench prints; bench-json also snapshots
# the results — including the fast-vs-reference speedup ratios — into a
# dated BENCH_<date>.json for the perf trajectory.
BENCH_FIGS  = $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -timeout 60m .
BENCH_MICRO = $(GO) test -run '^$$' -bench . -benchmem ./internal/dram ./internal/farm ./internal/ecc

bench:
	$(BENCH_FIGS)
	$(BENCH_MICRO)

# bench-json also runs the islands-vs-single-population campaign (see
# cmd/benchjson/campaign.go), the persistence benchmark (store.go) and the
# batched-evaluation comparison (batch.go) so every snapshot carries the
# campaign_* ratios, the store append-latency trajectory and the
# speedup_batch_pop* / batch-allocation ratios.
bench-json:
	{ $(BENCH_FIGS) ; $(BENCH_MICRO) ; } \
		| $(GO) run ./cmd/benchjson -campaign -store -batch \
			-out BENCH_$$(date +%Y%m%d).json

# Quick-scale campaign: every figure in a couple of minutes.
experiments:
	$(GO) run ./cmd/experiments -quick -ext

# Full-scale campaign + markdown summary (the EXPERIMENTS.md numbers).
experiments-full:
	$(GO) run ./cmd/experiments -ext -markdown results.md

# Short fuzzing pass over the two parsers and the interpreter.
fuzz:
	$(GO) test -fuzz=FuzzParseStmts -fuzztime=30s ./internal/minicc
	$(GO) test -fuzz=FuzzInterpreter -fuzztime=30s ./internal/minicc
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/vpl

clean:
	rm -f results.md viruses.json
