# DStress reproduction — common entry points.

GO ?= go

.PHONY: all build test test-short check bench experiments experiments-full fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Static checks + the race detector over the whole tree, with a quick
# short-mode -race pass over the concurrency-heavy packages first so their
# failures surface before the long campaign tests run.
check:
	$(GO) vet ./...
	$(GO) test -race -short ./internal/farm ./internal/ga ./internal/virusdb
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick-scale campaign: every figure in a couple of minutes.
experiments:
	$(GO) run ./cmd/experiments -quick -ext

# Full-scale campaign + markdown summary (the EXPERIMENTS.md numbers).
experiments-full:
	$(GO) run ./cmd/experiments -ext -markdown results.md

# Short fuzzing pass over the two parsers and the interpreter.
fuzz:
	$(GO) test -fuzz=FuzzParseStmts -fuzztime=30s ./internal/minicc
	$(GO) test -fuzz=FuzzInterpreter -fuzztime=30s ./internal/minicc
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/vpl

clean:
	rm -f results.md viruses.json
