// Package dstress's top-level benchmark harness: one benchmark per table
// and figure of the paper's evaluation. Each benchmark regenerates its
// figure on the simulated platform at the reduced (quick) scale, reports
// the headline numbers as benchmark metrics, and logs the figure's rows
// (visible with -v). Run the cmd/experiments binary for the full-scale
// campaign and the complete printed tables.
//
//	go test -bench=. -benchmem
package dstress

import (
	"testing"

	"dstress/internal/experiments"
)

// benchStep runs one experiment per iteration on a fresh engine (prepared
// with any prerequisite discoveries baked in via the engine defaults) and
// reports the chosen metrics.
func benchStep(b *testing.B,
	step func(*experiments.Engine) (*experiments.Report, error),
	metrics ...string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		eng, err := experiments.NewEngine(experiments.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		rep, err := step(eng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.Log(row)
			}
			for _, m := range metrics {
				b.ReportMetric(rep.Metric(m), m)
			}
		}
	}
}

// BenchmarkFig01bWorkloadVariation regenerates Fig 1b: single-bit error
// counts per DIMM/rank for kmeans vs memcached under relaxed parameters.
// Paper: ~1000x variation across workloads, ~633x across DIMMs.
func BenchmarkFig01bWorkloadVariation(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig01bWorkloadVariation,
		"variation_across_workloads", "variation_across_dimms")
}

// BenchmarkGAParameterTuning regenerates the GA parameter selection on the
// bit-counting fitness. Paper: pop 40 / crossover 0.9 / mutation 0.5 wins
// at ~80 generations.
func BenchmarkGAParameterTuning(b *testing.B) {
	benchStep(b, (*experiments.Engine).GAParameterTuning,
		"best_population", "best_crossover", "best_mutation", "best_generations")
}

// BenchmarkFig08aWorst64Bit regenerates Fig 8a: the worst-case 64-bit data
// pattern search at 55°C. Paper: converges to a repeating-'1100' pattern.
func BenchmarkFig08aWorst64Bit(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig08aWorst64Bit,
		"best_ce", "similarity_to_1100", "generations", "final_similarity")
}

// BenchmarkFig08bTemperatureInvariance regenerates Fig 8b: the same search
// at 60°C rediscovers the 55°C pattern. Paper: cross-set SMF 0.90.
func BenchmarkFig08bTemperatureInvariance(b *testing.B) {
	benchStep(b, func(e *experiments.Engine) (*experiments.Report, error) {
		if _, err := e.Fig08aWorst64Bit(); err != nil {
			return nil, err
		}
		return e.Fig08bTemperatureInvariance()
	}, "similarity_best_55_vs_60", "cross_population_similarity",
		"consensus_similarity")
}

// BenchmarkFig08cBest64Bit regenerates Fig 8c: the CE-minimizing search.
// Paper: the worst-case pattern induces ~8x more CEs than the best case.
func BenchmarkFig08cBest64Bit(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig08cBest64Bit,
		"best_case_ce", "worst_case_ce", "worst_over_best")
}

// BenchmarkFig08dUEPatterns regenerates Fig 8d: the max-UE search at 62°C.
// Paper: UEs in 100% of runs, no convergence (SMF 0.58), bits 17,18,21,22
// always zero.
func BenchmarkFig08dUEPatterns(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig08dUEPatterns,
		"best_ue_frac", "final_similarity", "converged",
		"bits17_18_21_22_zero_frac")
}

// BenchmarkFig08eMicrobenchComparison regenerates Fig 8e: discovered
// patterns vs the traditional micro-benchmark suite across DIMM2/DIMM3.
// Paper: the virus induces >=45% more CEs than the best baseline.
func BenchmarkFig08eMicrobenchComparison(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig08eMicrobenchComparison,
		"worst_virus_ce", "best_baseline_ce", "virus_margin_over_baseline")
}

// BenchmarkFig09Worst24KB regenerates Fig 9: the 24-KByte data-pattern
// search. Paper: +16% CEs over the worst 64-bit pattern, converges.
func BenchmarkFig09Worst24KB(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig09Worst24KB,
		"uniform_worst_ce", "ideal_block_ce", "ideal_gain_over_uniform",
		"ga_gain_over_uniform")
}

// BenchmarkFig10Worst512KB regenerates Fig 10: the 512-KByte search brings
// no gain — interference does not cross banks.
func BenchmarkFig10Worst512KB(b *testing.B) {
	benchStep(b, func(e *experiments.Engine) (*experiments.Report, error) {
		if _, err := e.Fig09Worst24KB(); err != nil {
			return nil, err
		}
		return e.Fig10Worst512KB()
	}, "ideal_gain_over_uniform", "gain_over_24k")
}

// BenchmarkFig11AccessTemplate1 regenerates Fig 11: the row-selection
// access virus. Paper: +71% CEs over the data-only pattern; no convergence.
func BenchmarkFig11AccessTemplate1(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig11AccessTemplate1,
		"ga_best_ce", "data_only_ce", "gain_over_data", "final_similarity")
}

// BenchmarkFig12AccessTemplate2 regenerates Fig 12: the element-coefficient
// access virus. Paper: above the data patterns but below template 1; the
// coefficient search does not converge (JW 0.45).
func BenchmarkFig12AccessTemplate2(b *testing.B) {
	benchStep(b, func(e *experiments.Engine) (*experiments.Report, error) {
		if _, err := e.Fig11AccessTemplate1(); err != nil {
			return nil, err
		}
		return e.Fig12AccessTemplate2()
	}, "ga_best_ce", "gain_over_data", "vs_template1", "final_similarity")
}

// BenchmarkFig13aDataPatternPDF regenerates Fig 13a: the randomized
// data-pattern CE distribution, its normality, and the discovery
// probabilities. Paper: P(found worst) = 0.97 (64-bit), 1-4e-7 (24-KByte).
func BenchmarkFig13aDataPatternPDF(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig13aDataPatternPDF,
		"d64_mean", "d64_sigma", "d64_p_found_worst", "d24_p_stronger_exists")
}

// BenchmarkFig13bAccessPatternPDF regenerates Fig 13b: the randomized
// access-pattern distribution. Paper: P(found worst) = 0.95.
func BenchmarkFig13bAccessPatternPDF(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig13bAccessPatternPDF,
		"mean", "sigma", "p_found_worst")
}

// BenchmarkFig14MarginalTREFP regenerates Fig 14: the marginal refresh
// periods per virus and temperature, the workload validation of the access
// virus's margin, and the power savings. Paper: access virus most
// pessimistic; margins validated by real workloads; 17.7% DRAM / 8.6%
// system savings.
func BenchmarkFig14MarginalTREFP(b *testing.B) {
	benchStep(b, (*experiments.Engine).Fig14MarginalTREFP,
		"margin_64_bit_data_50C", "margin_access_50C",
		"validation_clean", "dram_savings", "system_savings")
}

// BenchmarkExtMarchComparison regenerates the March-vs-virus extension:
// back-to-back March tests miss retention faults; the virus scan finds the
// most error-prone rows.
func BenchmarkExtMarchComparison(b *testing.B) {
	benchStep(b, (*experiments.Engine).ExtMarchComparison,
		"march_plain_rows", "march_aware_rows", "virus_rows")
}

// BenchmarkExtRowhammer regenerates the clflush rowhammer extension.
func BenchmarkExtRowhammer(b *testing.B) {
	benchStep(b, (*experiments.Engine).ExtRowhammer,
		"cached_ce", "clflush_ce", "clflush_gain")
}

// BenchmarkExtRetentionProfiling regenerates the profiling-coverage
// extension: MSCAN fills miss rows the virus exposes.
func BenchmarkExtRetentionProfiling(b *testing.B) {
	benchStep(b, (*experiments.Engine).ExtRetentionProfiling,
		"virus_rows", "mscan_rows", "mscan_coverage")
}

// BenchmarkExtRetentionAwareRefresh regenerates the RAIDR-style refresh
// plan comparison: the virus-profiled plan is safe, the MSCAN one leaks.
func BenchmarkExtRetentionAwareRefresh(b *testing.B) {
	benchStep(b, (*experiments.Engine).ExtRetentionAwareRefresh,
		"virus_plan_ce", "MSCAN_plan_ce", "virus_refresh_savings")
}

// BenchmarkExtPredictiveMaintenance regenerates the fleet health-scan
// extension: the degrading DIMM is flagged scans before it fails.
func BenchmarkExtPredictiveMaintenance(b *testing.B) {
	benchStep(b, (*experiments.Engine).ExtPredictiveMaintenance,
		"flagged_at_scan")
}
