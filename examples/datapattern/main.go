// Data-pattern study: the Fig 8 workflow of the paper.
//
// The example searches for both the worst-case and the best-case 64-bit
// data patterns, then pits them against the traditional micro-benchmarks
// (MSCAN, checkerboard, walking 0s/1s, random) used by prior DRAM
// characterization studies — demonstrating the paper's headline: the
// synthesized virus induces far more errors than any classical test, so
// classical tests under-estimate the worst case.
//
//	go run ./examples/datapattern
package main

import (
	"fmt"
	"log"

	"dstress/internal/core"
	"dstress/internal/ga"
	"dstress/internal/server"
	"dstress/internal/xrand"
)

func main() {
	srv, err := server.New(server.DefaultConfig(16, 7))
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(srv, xrand.New(7))
	if err != nil {
		log.Fatal(err)
	}
	params := ga.DefaultParams()
	params.MaxGenerations = 80

	fmt.Println("== synthesis phase: worst-case pattern (max CE, 60°C) ==")
	worst, err := fw.RunSearch(core.SearchConfig{
		Spec:      core.Data64Spec{},
		Criterion: core.MaxCE,
		Point:     core.Relaxed(60),
		GA:        params,
	})
	if err != nil {
		log.Fatal(err)
	}
	worstWord := worst.Best.(*ga.BitGenome).Bits.Uint64()
	fmt.Printf("worst virus: %016x (%.1f CEs)\n\n", worstWord, worst.BestFitness)

	fmt.Println("== synthesis phase: best-case pattern (min CE, 60°C) ==")
	best, err := fw.RunSearch(core.SearchConfig{
		Spec:      core.Data64Spec{},
		Criterion: core.MinCE,
		Point:     core.Relaxed(60),
		GA:        params,
	})
	if err != nil {
		log.Fatal(err)
	}
	bestWord := best.Best.(*ga.BitGenome).Bits.Uint64()
	fmt.Printf("best virus:  %016x (%.1f CEs)\n\n", bestWord, -best.BestFitness)

	fmt.Println("== comparison against traditional micro-benchmarks (Fig 8e) ==")
	suite, err := fw.RunBaselineSuite(16)
	if err != nil {
		log.Fatal(err)
	}
	strongest, strongestCE := core.BestBaselineCE(suite)
	for _, b := range suite {
		fmt.Printf("  %-14s %6.1f CEs\n", b.Name, b.WorstPassCE)
	}
	worstM, err := fw.MeasureWord(worstWord)
	if err != nil {
		log.Fatal(err)
	}
	bestM, err := fw.MeasureWord(bestWord)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-14s %6.1f CEs  <- synthesized worst-case virus\n",
		"dstress-worst", worstM.MeanCE)
	fmt.Printf("  %-14s %6.1f CEs  <- synthesized best-case virus\n",
		"dstress-best", bestM.MeanCE)
	fmt.Printf("\nthe virus beats the strongest classical test (%s) by %.0f%%\n",
		strongest, (worstM.MeanCE/strongestCE-1)*100)
	fmt.Printf("worst/best gap: %.1fx (the same application's error rate can vary\n",
		worstM.MeanCE/bestM.MeanCE)
	fmt.Println("that much purely as a function of its input data)")
}
