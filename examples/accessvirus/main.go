// Access-pattern study: the Fig 11 workflow, plus a demonstration of the
// template programming tool running a real virus program.
//
// Part 1 compiles the paper's row-selection access template (written in the
// vpl template language) and executes an instance of it through the minicc
// C interpreter, so its loads travel through the cache hierarchy into the
// DRAM model — the reference execution path of a virus.
//
// Part 2 runs the GA search over the same template's search space: which of
// the 32 predecessor and 32 successor rows of every error-prone row should
// be hammered to maximize errors. The memory holds the worst-case 64-bit
// data pattern throughout, as in the paper.
//
//	go run ./examples/accessvirus
package main

import (
	"fmt"
	"log"

	"dstress/internal/core"
	"dstress/internal/ga"
	"dstress/internal/server"
	"dstress/internal/virus"
	"dstress/internal/vpl"
	"dstress/internal/xrand"
)

const worstWord = 0x3333333333333333

func main() {
	srv, err := server.New(server.DefaultConfig(16, 11))
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(srv, xrand.New(11))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== part 1: compiling and running one access virus through minicc ==")
	runner, err := virus.NewRunner(srv.MCU(server.MCU2), 64, 1<<22)
	if err != nil {
		log.Fatal(err)
	}
	analyzed, err := runner.Compile(virus.AccessRowsTemplate,
		map[string]int64{"NT": 4, "XMAX": 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template parameters: ")
	for _, p := range analyzed.Params {
		fmt.Printf("%s[%d in %d..%d] ", p.Name, p.Size, p.Lo, p.Hi)
	}
	fmt.Println()

	// Hammer the same-bank neighbours (offsets ±8) of four target chunks.
	sel := make([]int64, 64)
	sel[32-8] = 1
	sel[31+8] = 1
	machine, err := runner.Execute(analyzed, map[string]vpl.Value{
		"ROWSEL":  {Vector: sel},
		"TARGETS": {Vector: []int64{24, 25, 26, 27}},
	})
	if err != nil {
		log.Fatal(err)
	}
	hits, misses, _ := srv.MCU(server.MCU2).CacheStats()
	fmt.Printf("virus executed %d interpreter steps; cache %d hits / %d misses; %d row activations\n\n",
		machine.Steps(), hits, misses, srv.MCU(server.MCU2).Activations())

	fmt.Println("== part 2: GA search over the row-selection space (60°C) ==")
	params := ga.DefaultParams()
	params.MaxGenerations = 60
	spec := core.NewAccessRowsSpec(worstWord)
	res, err := fw.RunSearch(core.SearchConfig{
		Spec:      spec,
		Criterion: core.MaxCE,
		Point:     core.Relaxed(60),
		GA:        params,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, err := spec.HammerlessBaseline(fw)
	if err != nil {
		log.Fatal(err)
	}
	selBits := res.Best.(*ga.BitGenome).Bits
	fmt.Printf("best selection (offset -32..-1,+1..+32): %s\n", selBits)
	fmt.Printf("selected %d/64 neighbour rows\n", selBits.OnesCount())
	fmt.Printf("data-pattern-only: %.1f CEs; with access virus: %.1f CEs (+%.0f%%)\n",
		base.MeanCE, res.BestFitness, (res.BestFitness/base.MeanCE-1)*100)
	fmt.Printf("search similarity at stop: %.2f (converged: %v)\n",
		res.FinalSimilarity, res.Converged)
	fmt.Println("many different row subsets disturb the victims about equally, which")
	fmt.Println("is why the paper's access searches converge poorly or not at all.")
}
