// Predictive maintenance: the paper's Section VI fleet use case.
//
// The worst-case virus discovered by DStress becomes a periodic health
// probe: every scan runs it on all DIMMs under a fixed stress point and
// records the CE counts. A degrading module shows a rising trend under the
// virus long before nominal-parameter operation is affected, so it can be
// replaced proactively. This example simulates six scan intervals during
// which DIMM2 wears out (its cell retention drops 12 % per interval) and
// shows the analyzer flagging it.
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"log"

	"dstress/internal/core"
	"dstress/internal/predict"
	"dstress/internal/server"
	"dstress/internal/xrand"
)

const virusWord = 0x3333333333333333 // the discovered worst-case pattern

func main() {
	srv, err := server.New(server.DefaultConfig(16, 5))
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(srv, xrand.New(5))
	if err != nil {
		log.Fatal(err)
	}
	analyzer := predict.NewAnalyzer()
	analyzer.FleetZThreshold = 6 // the simulated fleet has a wide healthy spread

	fmt.Println("periodic virus health scans (stress point: 2.283s / 1.428V / 60°C)")
	for scan := 1; scan <= 6; scan++ {
		obs, err := predict.Scan(fw, virusWord, predict.DefaultScanPoint())
		if err != nil {
			log.Fatal(err)
		}
		verdicts, err := analyzer.Record(obs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nscan %d:\n", scan)
		for i, o := range obs {
			status := "ok"
			if verdicts[i].Flagged {
				status = "FLAG: " + verdicts[i].Reason
			}
			fmt.Printf("  DIMM%d: %6.1f CEs   %s\n", o.MCU, o.MeanCE, status)
		}
		// DIMM2 degrades between scans; the others stay healthy.
		if err := srv.MCU(server.MCU2).Device().Age(0.88); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nhistory of DIMM2 under the virus probe:",
		fmtSeries(analyzer.History(server.MCU2)))
	fmt.Println("the rising trend is invisible at nominal parameters — the virus")
	fmt.Println("probe surfaces it scans earlier, enabling proactive replacement.")
}

func fmtSeries(vals []float64) string {
	s := ""
	for i, v := range vals {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%.0f", v)
	}
	return s
}
