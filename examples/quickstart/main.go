// Quickstart: the smallest end-to-end DStress run.
//
// It builds the simulated experimental server (four DIMMs, thermal testbed,
// ECC logging), heats the DIMMs to 55 °C under relaxed refresh/voltage, and
// lets the genetic algorithm synthesize the worst-case 64-bit data-pattern
// virus — the paper's Fig 8a experiment in miniature. Expect the discovered
// word to approximate the repeating '1100' pattern (0x3333...).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dstress/internal/core"
	"dstress/internal/ga"
	"dstress/internal/server"
	"dstress/internal/xrand"
)

func main() {
	// The simulated platform: X-Gene-2-like server, 4 DIMMs of
	// 8 banks x 16 rows x 2 ranks, one weak cell per two rows.
	srv, err := server.New(server.DefaultConfig(16, 42))
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(srv, xrand.New(42))
	if err != nil {
		log.Fatal(err)
	}

	params := ga.DefaultParams() // pop 40, crossover 0.9, mutation 0.5
	params.MaxGenerations = 60

	fmt.Println("searching for the worst-case 64-bit data pattern at 55°C ...")
	res, err := fw.RunSearch(core.SearchConfig{
		Spec:      core.Data64Spec{},
		Criterion: core.MaxCE,
		Point:     core.Relaxed(55),
		GA:        params,
	})
	if err != nil {
		log.Fatal(err)
	}

	best := res.Best.(*ga.BitGenome).Bits
	fmt.Printf("\ndiscovered virus word:  %016x\n", best.Uint64())
	fmt.Printf("bit pattern:            %s\n", best)
	fmt.Printf("mean correctable errors: %.1f per run (over %d generations, %d viruses evaluated)\n",
		res.BestMeasurement.MeanCE, res.Generations, res.Evaluations)
	fmt.Printf("population similarity:   %.2f (converged: %v)\n",
		res.FinalSimilarity, res.Converged)

	// Compare with the canonical charge-all pattern the paper reports.
	oracle, err := fw.MeasureWord(0x3333333333333333)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepeating-'1100' reference (0x3333...): %.1f CEs\n", oracle.MeanCE)
	fmt.Println("the discovered pattern should be close to it — DStress found the")
	fmt.Println("charge-all pattern without knowing the DRAM internals.")
}
