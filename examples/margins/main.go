// Margin discovery: the paper's Section VI use case.
//
// The discovered stress viruses are the safest possible probes for relaxing
// DRAM operating parameters: if the worst-case virus shows no errors at a
// refresh period, no real workload will. This example sweeps temperature,
// finds the marginal (longest safe) refresh period under relaxed voltage
// for the data-pattern and access viruses, and reports the DRAM and system
// power savings of running at the margin — the paper's 17.7 % / 8.6 %.
//
//	go run ./examples/margins
package main

import (
	"fmt"
	"log"

	"dstress/internal/bitvec"
	"dstress/internal/core"
	"dstress/internal/ga"
	"dstress/internal/power"
	"dstress/internal/server"
	"dstress/internal/xrand"
)

const worstWord = 0x3333333333333333

func main() {
	srv, err := server.New(server.DefaultConfig(16, 99))
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(srv, xrand.New(99))
	if err != nil {
		log.Fatal(err)
	}
	dev := srv.MCU(server.MCU2).Device()

	deployData := func() error {
		srv.MCU(server.MCU2).ResetStats()
		dev.Reset()
		dev.FillAllUniform(worstWord)
		return nil
	}
	rows := core.NewAccessRowsSpec(worstWord)
	deployAccess := func() error {
		if err := rows.Prepare(fw); err != nil {
			return err
		}
		all := bitvec.New(64)
		for i := 0; i < 64; i++ {
			all.Set(i, true)
		}
		return rows.Deploy(fw, ga.NewBitGenome(all))
	}

	fmt.Println("marginal refresh periods under relaxed VDD (no CEs, no UEs):")
	fmt.Println("temp    data virus   access virus   (nominal TREFP = 0.064 s)")
	var accessMargin50 float64
	for _, temp := range []float64{50, 60, 70} {
		md, err := fw.MarginalTREFP(deployData, core.RelaxedVDD, temp,
			core.NoErrors, 14)
		if err != nil {
			log.Fatal(err)
		}
		ma, err := fw.MarginalTREFP(deployAccess, core.RelaxedVDD, temp,
			core.NoErrors, 14)
		if err != nil {
			log.Fatal(err)
		}
		if temp == 50 {
			accessMargin50 = ma
		}
		fmt.Printf("%2.0f°C   %8.3f s   %10.3f s\n", temp, md, ma)
	}

	fmt.Println("\nUE-only margins (CEs tolerated — higher, but risky in production):")
	for _, temp := range []float64{50, 60, 70} {
		m, err := fw.MarginalTREFP(deployData, core.RelaxedVDD, temp,
			core.NoUEs, 14)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2.0f°C   %8.3f s\n", temp, m)
	}

	sav, err := core.SavingsAt(power.Default(), accessMargin50, core.RelaxedVDD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrunning at the access virus's 50°C margin (%.3f s, %.3f V):\n",
		sav.MarginalTREFP, core.RelaxedVDD)
	fmt.Printf("  DIMM power:   %.2f W -> %.2f W  (-%.1f%%)\n",
		sav.DIMMNominalW, sav.DIMMMarginalW, sav.DIMMSavings*100)
	fmt.Printf("  system power: -%.1f%%\n", sav.SystemSavings*100)
	fmt.Println("\nthe access virus sets the most conservative margin: any real")
	fmt.Println("workload stresses the DRAM strictly less than the virus does.")
}
